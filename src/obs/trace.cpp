#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/env.h"

namespace jitfd::obs {

namespace detail {

std::atomic<std::uint32_t> g_enabled{0};

}  // namespace detail

namespace {

// Bit 31 of g_enabled is the global force flag; the low bits count live
// EnableScopes. enabled() only tests != 0, so the two compose freely.
constexpr std::uint32_t kForceBit = 1U << 31;

std::atomic<std::size_t> g_capacity{std::size_t{1} << 16};

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

/// Single-writer ring buffer of one thread. The owning thread is the
/// only writer; collectors read behind an acquire on `head` and are
/// documented to run only while the writer is quiescent.
struct ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity, int rank_)
      : slots(capacity), mask(capacity - 1), rank(rank_) {}

  std::vector<Event> slots;
  std::size_t mask;
  std::atomic<std::uint64_t> head{0};
  int rank;
};

struct Registry {
  std::mutex mtx;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  // Records merged from other rank processes (import_file), already
  // realigned onto this process's epoch.
  std::vector<TraceData::Rec> imported;
  std::uint64_t imported_dropped = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // Leaked: rank threads may outlive
  return *r;                          // static destruction order.
}

thread_local ThreadBuffer* t_buf = nullptr;
thread_local int t_rank = 0;
thread_local int t_depth = 0;

ThreadBuffer* attach_thread() {
  auto buf = std::make_unique<ThreadBuffer>(
      round_pow2(g_capacity.load(std::memory_order_relaxed)), t_rank);
  t_buf = buf.get();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  reg.buffers.push_back(std::move(buf));
  return t_buf;
}

void push(const Event& e) {
  ThreadBuffer* b = t_buf != nullptr ? t_buf : attach_thread();
  const std::uint64_t h = b->head.load(std::memory_order_relaxed);
  b->slots[static_cast<std::size_t>(h) & b->mask] = e;
  b->head.store(h + 1, std::memory_order_release);
}

/// Reads JITFD_TRACE / JITFD_TRACE_RING before main. Strict-parse
/// failures cannot propagate out of a static initializer, so they are
/// reported and fatal here.
const bool g_env_init = [] {
  try {
    const std::int64_t ring = jitfd::env::get_int("JITFD_TRACE_RING", 0);
    if (ring > 0) {
      set_ring_capacity(static_cast<std::size_t>(ring));
    }
    if (jitfd::env::get_bool("JITFD_TRACE", false)) {
      set_enabled(true);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "jitfd: %s\n", ex.what());
    std::exit(2);
  }
  return true;
}();

}  // namespace

const char* to_string(Cat cat) {
  switch (cat) {
    case Cat::Compile:
      return "compile";
    case Cat::Jit:
      return "jit";
    case Cat::Compute:
      return "compute";
    case Cat::Pack:
      return "pack";
    case Cat::Send:
      return "send";
    case Cat::Wait:
      return "wait";
    case Cat::Unpack:
      return "unpack";
    case Cat::Halo:
      return "halo";
    case Cat::Msg:
      return "msg";
    case Cat::Sync:
      return "sync";
    case Cat::Sparse:
      return "sparse";
    case Cat::Run:
      return "run";
  }
  return "?";
}

namespace {

// The per-process epoch lives on the system-wide CLOCK_MONOTONIC
// timeline (std::chrono::steady_clock on Linux), which is what makes
// cross-process trace merging exact.
const std::chrono::steady_clock::time_point& epoch_tp() {
  static const std::chrono::steady_clock::time_point e =
      std::chrono::steady_clock::now();
  return e;
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_tp())
          .count());
}

std::uint64_t epoch_monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          epoch_tp().time_since_epoch())
          .count());
}

void set_enabled(bool on) {
  if (on) {
    detail::g_enabled.fetch_or(kForceBit, std::memory_order_relaxed);
    (void)now_ns();  // Pin the epoch before the first span.
  } else {
    detail::g_enabled.fetch_and(~kForceBit, std::memory_order_relaxed);
  }
}

EnableScope::EnableScope(bool on) : on_(on) {
  if (on_) {
    detail::g_enabled.fetch_add(1, std::memory_order_relaxed);
    (void)now_ns();
  }
}

EnableScope::~EnableScope() {
  if (on_) {
    detail::g_enabled.fetch_sub(1, std::memory_order_relaxed);
  }
}

void set_thread_rank(int rank) {
  t_rank = rank;
  if (t_buf != nullptr) {
    t_buf->rank = rank;
  }
}

void set_ring_capacity(std::size_t events) {
  g_capacity.store(round_pow2(events), std::memory_order_relaxed);
}

namespace detail {

std::uint64_t span_begin() {
  ++t_depth;
  return now_ns();
}

void span_end(const char* name, Cat cat, std::uint64_t t0_ns,
              std::int64_t a0, std::int32_t a1) {
  const std::uint64_t t1 = now_ns();
  const int depth = --t_depth;
  Event e;
  e.name = name;
  e.cat = cat;
  e.t0_ns = t0_ns;
  e.t1_ns = t1;
  e.a0 = a0;
  e.a1 = a1;
  e.depth = static_cast<std::uint8_t>(depth < 0 ? 0 : depth);
  push(e);
}

void record_instant(const char* name, Cat cat, std::int64_t a0,
                    std::int32_t a1) {
  Event e;
  e.name = name;
  e.cat = cat;
  e.t0_ns = e.t1_ns = now_ns();
  e.a0 = a0;
  e.a1 = a1;
  e.depth = static_cast<std::uint8_t>(t_depth < 0 ? 0 : t_depth);
  push(e);
}

}  // namespace detail

TraceData collect() {
  TraceData out;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  for (const auto& buf : reg.buffers) {
    const std::uint64_t h = buf->head.load(std::memory_order_acquire);
    const std::uint64_t cap = buf->mask + 1;
    const std::uint64_t n = h < cap ? h : cap;
    out.dropped += h - n;
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Event& e = buf->slots[static_cast<std::size_t>(i) & buf->mask];
      TraceData::Rec rec;
      rec.name = e.name != nullptr ? e.name : "?";
      rec.cat = e.cat;
      rec.rank = buf->rank;
      rec.t0_ns = e.t0_ns;
      rec.t1_ns = e.t1_ns;
      rec.a0 = e.a0;
      rec.a1 = e.a1;
      rec.depth = e.depth;
      out.events.push_back(std::move(rec));
    }
  }
  out.events.insert(out.events.end(), reg.imported.begin(),
                    reg.imported.end());
  out.dropped += reg.imported_dropped;
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceData::Rec& a, const TraceData::Rec& b) {
                     return a.rank != b.rank ? a.rank < b.rank
                                             : a.t0_ns < b.t0_ns;
                   });
  return out;
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  for (const auto& buf : reg.buffers) {
    buf->head.store(0, std::memory_order_release);
  }
  reg.imported.clear();
  reg.imported_dropped = 0;
}

namespace {

// Binary trace-file framing (host-endian; the files only ever travel
// between rank processes of one launch on one machine).
constexpr std::uint64_t kTraceMagic = 0x4a46445452433031ULL;  // "JFDTRC01"

template <typename T>
void put(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool get(std::ifstream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return static_cast<bool>(is);
}

}  // namespace

void save_file(const std::string& path) {
  const TraceData data = collect();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw std::runtime_error("obs::save_file: cannot write " + path);
  }
  put(os, kTraceMagic);
  put(os, epoch_monotonic_ns());
  put(os, data.dropped);
  put(os, static_cast<std::uint64_t>(data.events.size()));
  for (const TraceData::Rec& r : data.events) {
    put(os, static_cast<std::uint32_t>(r.name.size()));
    os.write(r.name.data(), static_cast<std::streamsize>(r.name.size()));
    put(os, static_cast<std::uint8_t>(r.cat));
    put(os, static_cast<std::int32_t>(r.rank));
    put(os, r.t0_ns);
    put(os, r.t1_ns);
    put(os, r.a0);
    put(os, r.a1);
    put(os, r.depth);
  }
  if (!os) {
    throw std::runtime_error("obs::save_file: short write to " + path);
  }
}

bool import_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return false;
  }
  std::uint64_t magic = 0;
  std::uint64_t their_epoch = 0;
  std::uint64_t dropped = 0;
  std::uint64_t count = 0;
  if (!get(is, magic) || magic != kTraceMagic || !get(is, their_epoch) ||
      !get(is, dropped) || !get(is, count)) {
    return false;
  }
  // Realign: their t=0 is their epoch; shift every timestamp by the
  // epoch difference on the shared monotonic timeline. Events predating
  // our epoch clamp to 0 (can only happen when our epoch was pinned
  // later than theirs).
  const std::int64_t delta = static_cast<std::int64_t>(their_epoch) -
                             static_cast<std::int64_t>(epoch_monotonic_ns());
  std::vector<TraceData::Rec> recs;
  recs.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    if (!get(is, name_len) || name_len > (1U << 20)) {
      return false;
    }
    TraceData::Rec r;
    r.name.resize(name_len);
    is.read(r.name.data(), static_cast<std::streamsize>(name_len));
    std::uint8_t cat = 0;
    std::int32_t rank = 0;
    if (!get(is, cat) || !get(is, rank) || !get(is, r.t0_ns) ||
        !get(is, r.t1_ns) || !get(is, r.a0) || !get(is, r.a1) ||
        !get(is, r.depth)) {
      return false;
    }
    r.cat = static_cast<Cat>(cat);
    r.rank = rank;
    const auto shift = [delta](std::uint64_t t) {
      const std::int64_t shifted = static_cast<std::int64_t>(t) + delta;
      return shifted > 0 ? static_cast<std::uint64_t>(shifted)
                         : std::uint64_t{0};
    };
    r.t0_ns = shift(r.t0_ns);
    r.t1_ns = shift(r.t1_ns);
    recs.push_back(std::move(r));
  }
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  reg.imported.insert(reg.imported.end(),
                      std::make_move_iterator(recs.begin()),
                      std::make_move_iterator(recs.end()));
  reg.imported_dropped += dropped;
  return true;
}

}  // namespace jitfd::obs
