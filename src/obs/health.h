// Numerical-health monitoring: the consumer side of the compiler-
// generated per-field reduction kernels (ir/lower emits HealthCheck IET
// nodes; codegen/emit and runtime/interpreter execute them and feed the
// per-rank local statistics here).
//
// A Monitor lives for one Operator::apply(). Every health step it
// receives, per checked field, the rank-local NaN/Inf counts, finite
// min/max and sum of squares over the owned interior (ghosts excluded),
// reduces them across ranks through the SMPI collectives — the check is
// guarded by `time % interval` identically on every rank, so the
// collectives stay in lockstep — and:
//   - appends a Sample to the run's Summary time-series,
//   - updates the obs/metrics registry and emits a structured event,
//   - feeds the flight recorder's bounded health ring,
//   - applies the OnNan policy when NaN/Inf points appear.
//
// OnNan::AbortDump writes the flight-recorder bundle and throws
// DivergenceError on every rank (the reduced counts are identical
// everywhere, so no rank is left blocked in a collective); smpi::run
// rethrows it on the caller thread, turning divergence into a nonzero
// process exit.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "smpi/comm.h"

namespace jitfd::obs::health {

/// Rank-local reduction results for one field at one health step, over
/// the owned interior only. min/max are over finite values (+/-inf of
/// the empty reduction when every point is NaN); l2sq is the local sum
/// of squares of finite values.
struct LocalStats {
  std::int64_t nan_count = 0;
  std::int64_t inf_count = 0;
  double min = 0.0;
  double max = 0.0;
  double l2sq = 0.0;
};

/// Backend-facing callbacks: the interpreter calls these directly; the
/// JIT path trampolines the generated kernel's ops->step / ops->health
/// function pointers into them.
class Sink {
 public:
  virtual ~Sink() = default;
  /// A time step is beginning on this rank.
  virtual void on_step(std::int64_t time) = 0;
  /// A generated health kernel reduced `field_id` at step `time`.
  virtual void on_check(int field_id, std::int64_t time,
                        const LocalStats& local) = 0;
};

/// What to do when a health check finds NaN/Inf points.
enum class OnNan {
  Ignore,     ///< Sample only; the run continues silently.
  Record,     ///< Mark the RunSummary and emit a divergence event.
  AbortDump,  ///< Dump the flight bundle and throw DivergenceError.
};

const char* to_string(OnNan policy);
/// Parse "ignore" | "record" | "abort_dump" (throws std::invalid_argument).
OnNan on_nan_from_string(const std::string& name);

/// One globally-reduced health sample.
struct Sample {
  std::int64_t step = 0;
  int field_id = -1;
  std::string field;
  std::int64_t nan_count = 0;  ///< Global NaN points in the owned region.
  std::int64_t inf_count = 0;
  double min = 0.0;  ///< Global finite min (+inf when none finite).
  double max = 0.0;  ///< Global finite max (-inf when none finite).
  double l2 = 0.0;   ///< Global L2 norm of finite values.
  int first_bad_rank = -1;  ///< Lowest rank with NaN/Inf (-1 = clean).

  bool bad() const { return nan_count + inf_count > 0; }
  std::string to_json() const;
};

/// Per-run health outcome, carried in core::RunSummary.
struct Summary {
  std::int64_t checks = 0;      ///< (field, step) checks performed.
  std::int64_t nan_points = 0;  ///< Global NaN points at the last check.
  std::int64_t inf_points = 0;
  std::int64_t first_bad_step = -1;  ///< -1 = the run stayed healthy.
  int first_bad_rank = -1;
  std::string first_bad_field;
  std::vector<Sample> series;

  bool healthy() const { return first_bad_step < 0; }
};

/// Thrown by OnNan::AbortDump (on every rank; smpi::run rethrows the
/// lowest rank's copy after all ranks joined).
class DivergenceError : public std::runtime_error {
 public:
  DivergenceError(const std::string& what, std::int64_t step, int rank,
                  std::string field, std::string dump_path)
      : std::runtime_error(what),
        step_(step),
        rank_(rank),
        field_(std::move(field)),
        dump_path_(std::move(dump_path)) {}

  std::int64_t step() const { return step_; }
  /// Lowest rank with NaN/Inf points (globally agreed).
  int rank() const { return rank_; }
  const std::string& field() const { return field_; }
  /// Path of the flight-recorder bundle ("" when dumping was disabled).
  const std::string& dump_path() const { return dump_path_; }

 private:
  std::int64_t step_;
  int rank_;
  std::string field_;
  std::string dump_path_;
};

/// Per-rank, per-run monitor. Each rank thread owns one (SPMD); the
/// cross-rank reduction happens inside on_check.
class Monitor : public Sink {
 public:
  struct Options {
    OnNan on_nan = OnNan::Record;
    /// Communicator for cross-rank reductions; nullptr on serial grids
    /// (local statistics are then already global).
    const smpi::Communicator* comm = nullptr;
    int rank = 0;
    /// Resolves a field id to its name for samples and diagnostics.
    std::function<std::string(int)> field_name;
    /// Whether AbortDump writes the flight bundle (tests may disable).
    bool flight_dump = true;
  };

  explicit Monitor(Options opts);

  void on_step(std::int64_t time) override;
  void on_check(int field_id, std::int64_t time,
                const LocalStats& local) override;

  const Summary& summary() const { return summary_; }

 private:
  Options opts_;
  Summary summary_;
};

}  // namespace jitfd::obs::health
