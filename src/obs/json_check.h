// Minimal JSON parser + Chrome trace-event schema validation.
//
// Dependency-free (the container bakes in no JSON library): a strict
// recursive-descent parser over the full JSON grammar, plus a checker
// for the subset of the trace-event format obs/report.cpp emits. Used
// by tests/test_trace.cpp and the tools/trace_check CI gate.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace jitfd::obs {

/// Parsed JSON value (the full grammar; numbers as double, \u escapes
/// collapsed). Public so schema checks beyond the built-in ones —
/// tools/perf_sentinel's bench-report comparison in particular — can
/// walk documents without a JSON dependency.
struct JsonValue {
  enum class Type { Null, Bool, Num, Str, Arr, Obj };
  Type type = Type::Null;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  /// First value of `key` in an object (nullptr when absent or not an
  /// object).
  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

/// Strict parse of a complete JSON document. Returns false (with a
/// position-annotated message in *error when given) on any violation.
bool json_parse(std::string_view json, JsonValue& out,
                std::string* error = nullptr);

/// Result of validate_chrome_trace.
struct ChromeCheck {
  bool ok = false;
  std::string error;           ///< First violation (empty when ok).
  std::int64_t events = 0;     ///< Non-metadata trace events.
  std::int64_t complete = 0;   ///< ph == "X" events.
  std::int64_t instants = 0;   ///< ph == "i" events.
  std::set<int> tids;          ///< Distinct tids (ranks) seen.
};

/// Parse `json` and check the Chrome trace-event schema:
///  - top level is an object with a "traceEvents" array;
///  - every event is an object with string "name"/"ph" and numeric
///    "ts"/"pid"/"tid";
///  - "X" events carry a non-negative numeric "dur";
///  - timestamps are non-negative.
ChromeCheck validate_chrome_trace(std::string_view json);

/// Bare JSON well-formedness check (full grammar, no schema).
bool json_valid(std::string_view json, std::string* error = nullptr);

/// Result of the metrics / analysis schema checks.
struct SchemaCheck {
  bool ok = false;
  std::string error;        ///< First violation (empty when ok).
  std::int64_t items = 0;   ///< Metrics entries / analysis sections seen.
};

/// Check the obs::metrics::to_json() schema: a top-level object with a
/// "metrics" array whose entries carry a string "name", a "type" of
/// counter|gauge|histogram, and the matching value fields (counters and
/// gauges a numeric "value"; histograms numeric "count"/"sum" plus a
/// "buckets" array of {le, count} with monotone cumulative counts).
SchemaCheck validate_metrics_json(std::string_view json);

/// Check the obs::analysis_json() schema: a top-level "analysis" object
/// with numeric run fields and "wait" / "overlap" / "imbalance" /
/// "deep_halo" sections (per-rank wait rows and per-step load rows
/// included).
SchemaCheck validate_analysis_json(std::string_view json);

/// Check the core::autotune_report_json() schema: a top-level "autotune"
/// object with an "objective" of wall|attributed, a non-empty decision
/// string "why", a "best" (mode, depth, tile) row, a "rebalance"
/// recommendation, "trials" rows (each carrying the full AnalysisScore
/// under the attributed objective), and "skipped" rows with non-empty
/// clamp reasons. items counts trials.
SchemaCheck validate_autotune_json(std::string_view json);

/// Check the obs::events::to_json() schema: a top-level object with an
/// "events" array (entries carry string "name"/"cat", numeric
/// "rank"/"step"/"t_ns", and a "kv" object of numeric values) and a
/// numeric "dropped" counter. items counts events.
SchemaCheck validate_events_json(std::string_view json);

/// Result of validate_flight_json.
struct FlightCheck {
  bool ok = false;
  std::string error;             ///< First violation (empty when ok).
  int rank = -1;                 ///< flight.rank (culprit rank).
  std::int64_t step = -1;        ///< flight.step.
  std::string reason;            ///< flight.reason.
  std::int64_t health_samples = 0;  ///< Entries in flight.health.
};

/// Check the obs::flight dump-bundle schema (schema_version 1): a
/// top-level "flight" object with string "reason"/"detail", numeric
/// "rank"/"step", a "config" object, a "health" array of health
/// samples, a "steps" array of {rank, step} rows, an embedded events
/// document, a "trace" array of span rows, and an embedded metrics
/// document.
FlightCheck validate_flight_json(std::string_view json);

/// Result of validate_prometheus_text.
struct PromCheck {
  bool ok = false;
  std::string error;        ///< First violation (empty when ok).
  std::int64_t helps = 0;   ///< "# HELP" lines seen.
  std::int64_t types = 0;   ///< "# TYPE" lines seen.
  std::int64_t samples = 0; ///< Sample lines seen.
};

/// Check Prometheus text exposition as obs::metrics::to_prometheus
/// emits it: every "# TYPE <name> <kind>" has kind in
/// counter|gauge|histogram and is immediately preceded by a
/// "# HELP <name> ..." line for the same family; every sample line is
/// "<name>[{labels}] <number>" where <name> extends the family
/// announced by the most recent "# TYPE".
PromCheck validate_prometheus_text(std::string_view text);

}  // namespace jitfd::obs
