// Minimal JSON parser + Chrome trace-event schema validation.
//
// Dependency-free (the container bakes in no JSON library): a strict
// recursive-descent parser over the full JSON grammar, plus a checker
// for the subset of the trace-event format obs/report.cpp emits. Used
// by tests/test_trace.cpp and the tools/trace_check CI gate.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

namespace jitfd::obs {

/// Result of validate_chrome_trace.
struct ChromeCheck {
  bool ok = false;
  std::string error;           ///< First violation (empty when ok).
  std::int64_t events = 0;     ///< Non-metadata trace events.
  std::int64_t complete = 0;   ///< ph == "X" events.
  std::int64_t instants = 0;   ///< ph == "i" events.
  std::set<int> tids;          ///< Distinct tids (ranks) seen.
};

/// Parse `json` and check the Chrome trace-event schema:
///  - top level is an object with a "traceEvents" array;
///  - every event is an object with string "name"/"ph" and numeric
///    "ts"/"pid"/"tid";
///  - "X" events carry a non-negative numeric "dur";
///  - timestamps are non-negative.
ChromeCheck validate_chrome_trace(std::string_view json);

/// Bare JSON well-formedness check (full grammar, no schema).
bool json_valid(std::string_view json, std::string* error = nullptr);

}  // namespace jitfd::obs
