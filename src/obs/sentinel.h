// Perf-regression sentinel: compares a freshly produced bench report
// against a committed bench/BENCH_*.json baseline, both in the shared
// bench_util.h series_json schema, and fails when a series regressed.
//
// Comparison rules (per baseline series, matched to the fresh report by
// name):
//  * a series missing from the fresh report is a failure — coverage
//    can only grow;
//  * median_seconds may exceed the baseline by at most
//    tolerance_pct + max(spread_pct of both sides): the committed
//    spread is the honesty metric, so a noisy baseline buys a wider
//    band rather than a flaky gate;
//  * series whose baseline median is below min_seconds skip the time
//    check (too fast to time reliably) but still check counters;
//  * machine-independent counters (any extra numeric field next to
//    median_seconds: message counts, bytes, exchanges) must match
//    within counter_tolerance_pct — 0 means exactly;
//  * drift gates (an optional "drift" object per series: metric ->
//    {value, band}) check the fresh |measured - predicted| drift of a
//    perfmodel metric against the band committed in the BASELINE — the
//    model is the contract, so the fresh run must stay inside the
//    committed band regardless of what the fresh band says. A drift
//    metric missing from the fresh report is a failure.
//
// This is a library (tools/perf_sentinel is a thin CLI) so the rules
// themselves are unit-tested, including the injected-slowdown self-test
// the CI job runs with --scale-fresh.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace jitfd::obs {

struct SentinelOptions {
  double tolerance_pct = 25.0;  ///< Base allowance on median_seconds.
  double min_seconds = 0.0;     ///< Baseline medians below this skip timing.
  double scale_fresh = 1.0;     ///< Multiplier on fresh medians (self-test).
  bool check_counters = true;
  double counter_tolerance_pct = 0.0;
  /// Added to every fresh drift value (injected-regression self-test,
  /// the drift analogue of scale_fresh).
  double drift_shift = 0.0;
};

struct SentinelResult {
  bool ok = false;
  int series_checked = 0;
  std::vector<std::string> failures;  ///< Empty when ok.
  std::vector<std::string> notes;     ///< Per-series pass lines.
  std::string error;  ///< Parse/schema failure (distinct from regression).

  /// Human-readable digest of notes + failures.
  std::string report() const;
};

/// Compare two series_json documents (baseline = committed artifact,
/// fresh = just-measured report). A malformed document sets `error` and
/// leaves ok == false with no failures.
SentinelResult sentinel_compare(std::string_view baseline_json,
                                std::string_view fresh_json,
                                const SentinelOptions& opts = {});

}  // namespace jitfd::obs
