// Flight recorder: a post-mortem story for crashed or diverged runs.
//
// Long-lived solver processes need more than a stack trace when things
// go wrong: which step each rank was on, what the health time-series
// looked like leading up to the NaN, what the run was configured as,
// and what the last recorded events were. This module accumulates that
// state cheaply during a run (a relaxed per-step store, bounded health
// ring, config map written once per apply) and, on demand — NaN/Inf
// detection under on_nan=abort_dump, an uncaught exception, or a fatal
// signal — dumps one schema-validated JSON bundle:
//
//   {"flight": {"schema_version": 1, "reason": ..., "rank": N,
//               "step": N, "detail": ..., "config": {...},
//               "steps": [{"rank": N, "step": N}, ...],
//               "health": [...], "events": {...}, "trace": [...],
//               "metrics": {...}}}
//
// The dump is once-per-process (first reason wins; later calls return
// the existing path) and lands in $JITFD_FLIGHT_DIR (default ".") as
// jitfd_flight.json. tools/trace_check --flight validates the schema.
//
// The signal/terminate handlers are best-effort: JSON serialization is
// not async-signal-safe, but a crashing solver has nothing to lose.
#pragma once

#include <cstdint>
#include <string>

namespace jitfd::obs::flight {

/// Record one run-configuration entry. `json_value` must be a valid
/// JSON value (quoted string, number, object, ...); it is embedded
/// verbatim under "config"."key". Last write per key wins.
void set_config(const std::string& key, const std::string& json_value);

/// One health-ring record. Kept as a compact POD so the per-check cost
/// is a mutex'd struct copy; JSON formatting happens only at dump
/// time (health checks run every few steps, dumps once per process).
struct HealthRec {
  std::int64_t step = 0;
  int field_id = -1;
  char field[24] = {};  ///< Field name (truncated to fit).
  std::int64_t nan_count = 0;
  std::int64_t inf_count = 0;
  double min = 0.0;  ///< Non-finite values export as JSON null.
  double max = 0.0;
  double l2 = 0.0;
  int bad_rank = -1;
};

/// Append one health sample to the bounded ring: the oldest samples
/// are dropped beyond kHealthRing.
void record_health(const HealthRec& rec);
inline constexpr std::size_t kHealthRing = 512;

/// Note the step `rank` is currently executing (one relaxed store; the
/// generated per-step hook and the interpreter call this every step).
void note_step(int rank, std::int64_t step);

/// Write the post-mortem bundle and return its path. Idempotent: only
/// the first call writes; later calls return the first path. `rank` and
/// `step` may be -1 when unknown (crash handlers).
std::string dump(const std::string& reason, int rank, std::int64_t step,
                 const std::string& detail);

/// Whether dump() has already run (tests / examples).
bool dumped();

/// Reset the dumped-once latch and accumulated health/step state
/// (config is kept). Meant for tests that exercise multiple dumps in
/// one process.
void reset_for_testing();

/// Install std::set_terminate and fatal-signal (SIGSEGV/SIGABRT/
/// SIGFPE/SIGILL/SIGBUS) handlers that dump before dying. Idempotent.
void install_crash_handlers();

}  // namespace jitfd::obs::flight
