#include "obs/health.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>

#include "obs/events.h"
#include "obs/flight.h"
#include "obs/metrics.h"

namespace jitfd::obs::health {

const char* to_string(OnNan policy) {
  switch (policy) {
    case OnNan::Ignore:
      return "ignore";
    case OnNan::Record:
      return "record";
    case OnNan::AbortDump:
      return "abort_dump";
  }
  return "?";
}

OnNan on_nan_from_string(const std::string& name) {
  if (name == "ignore") {
    return OnNan::Ignore;
  }
  if (name == "record") {
    return OnNan::Record;
  }
  if (name == "abort_dump" || name == "abort") {
    return OnNan::AbortDump;
  }
  throw std::invalid_argument("unknown on_nan policy '" + name + "'");
}

namespace {

void append_finite_or_null(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    os << tmp.str();
  } else {
    os << "null";
  }
}

}  // namespace

std::string Sample::to_json() const {
  std::ostringstream os;
  os << "{\"step\": " << step << ", \"field\": \"" << field
     << "\", \"field_id\": " << field_id << ", \"nan\": " << nan_count
     << ", \"inf\": " << inf_count << ", \"min\": ";
  append_finite_or_null(os, min);
  os << ", \"max\": ";
  append_finite_or_null(os, max);
  os << ", \"l2\": ";
  append_finite_or_null(os, l2);
  os << ", \"bad_rank\": " << first_bad_rank << "}";
  return os.str();
}

Monitor::Monitor(Options opts) : opts_(std::move(opts)) {}

void Monitor::on_step(std::int64_t time) {
  flight::note_step(opts_.rank, time);
}

void Monitor::on_check(int field_id, std::int64_t time,
                       const LocalStats& local) {
  Sample s;
  s.step = time;
  s.field_id = field_id;
  s.field = opts_.field_name ? opts_.field_name(field_id)
                             : "f" + std::to_string(field_id);

  // Cross-rank reduction. The guard (time % interval == 0) is baked
  // identically into every rank's kernel, so these collectives match in
  // call order across ranks.
  std::int64_t counts[2] = {local.nan_count, local.inf_count};
  // One Min reduction covers both the finite min and (negated) max.
  double minmax[2] = {local.min, -local.max};
  double l2sq[1] = {local.l2sq};
  std::int64_t bad_rank[1] = {
      local.nan_count + local.inf_count > 0
          ? static_cast<std::int64_t>(opts_.rank)
          : std::numeric_limits<std::int64_t>::max()};
  if (opts_.comm != nullptr) {
    opts_.comm->allreduce(std::span<std::int64_t>(counts), smpi::ReduceOp::Sum);
    opts_.comm->allreduce(std::span<double>(minmax), smpi::ReduceOp::Min);
    opts_.comm->allreduce(std::span<double>(l2sq), smpi::ReduceOp::Sum);
    opts_.comm->allreduce(std::span<std::int64_t>(bad_rank),
                          smpi::ReduceOp::Min);
  }
  s.nan_count = counts[0];
  s.inf_count = counts[1];
  s.min = minmax[0];
  s.max = -minmax[1];
  s.l2 = std::sqrt(l2sq[0]);
  s.first_bad_rank =
      s.bad() && bad_rank[0] != std::numeric_limits<std::int64_t>::max()
          ? static_cast<int>(bad_rank[0])
          : -1;

  const bool newly_bad = s.bad() && summary_.first_bad_step < 0;
  ++summary_.checks;
  summary_.nan_points = s.nan_count;
  summary_.inf_points = s.inf_count;
  if (newly_bad) {
    summary_.first_bad_step = s.step;
    summary_.first_bad_rank = s.first_bad_rank;
    summary_.first_bad_field = s.field;
  }
  summary_.series.push_back(s);

  // Process-wide sinks (metrics, events, flight ring) see each global
  // sample once: rank 0 reports for everyone.
  if (opts_.rank == 0) {
    static metrics::Counter& checks = metrics::counter(
        "health.checks", "Health checks performed (one per field per "
                         "health step, globally reduced)");
    static metrics::Counter& divergences = metrics::counter(
        "health.divergences",
        "Health checks that first detected NaN/Inf points in a run");
    static metrics::Gauge& nan_points = metrics::gauge(
        "health.nan_points", "Global NaN points at the last health check");
    static metrics::Gauge& inf_points = metrics::gauge(
        "health.inf_points", "Global Inf points at the last health check");
    checks.add(1);
    nan_points.set(static_cast<double>(s.nan_count));
    inf_points.set(static_cast<double>(s.inf_count));
    if (newly_bad) {
      divergences.add(1);
    }
    events::emit("health.check", events::EvCat::Health, s.step,
                 {{"field", static_cast<double>(s.field_id)},
                  {"nan", static_cast<double>(s.nan_count)},
                  {"inf", static_cast<double>(s.inf_count)},
                  {"l2", s.l2}});
    if (newly_bad) {
      events::emit("health.divergence", events::EvCat::Health, s.step,
                   {{"field", static_cast<double>(s.field_id)},
                    {"rank", static_cast<double>(s.first_bad_rank)},
                    {"nan", static_cast<double>(s.nan_count)}});
    }
    flight::HealthRec rec;
    rec.step = s.step;
    rec.field_id = s.field_id;
    std::snprintf(rec.field, sizeof(rec.field), "%s", s.field.c_str());
    rec.nan_count = s.nan_count;
    rec.inf_count = s.inf_count;
    rec.min = s.min;
    rec.max = s.max;
    rec.l2 = s.l2;
    rec.bad_rank = s.first_bad_rank;
    flight::record_health(rec);
  }

  if (s.bad() && opts_.on_nan == OnNan::AbortDump) {
    // Every rank reaches this branch (the reduced counts are
    // identical), so this collective is a barrier: it guarantees rank
    // 0's ring/metrics updates above are visible before any rank wins
    // the dump race and snapshots them into the bundle.
    if (opts_.comm != nullptr) {
      std::int64_t sync[1] = {0};
      opts_.comm->allreduce(std::span<std::int64_t>(sync),
                            smpi::ReduceOp::Sum);
    }
    std::ostringstream what;
    what << "numerical divergence: field '" << s.field << "' has "
         << s.nan_count << " NaN and " << s.inf_count
         << " Inf point(s) at step " << s.step << " (first bad rank "
         << s.first_bad_rank << ")";
    std::string path;
    if (opts_.flight_dump) {
      path = flight::dump("nan_detected", s.first_bad_rank, s.step,
                          what.str());
    }
    // The reduced counts are identical on every rank, so every rank
    // throws here and none is left waiting in a collective.
    throw DivergenceError(what.str(), s.step, s.first_bad_rank, s.field,
                          path);
  }
}

}  // namespace jitfd::obs::health
