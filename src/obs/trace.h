// Per-rank structured tracing: the observability substrate of the stack
// (the DEVITO_PROFILING analogue, but event-based).
//
// Every instrumented site records scoped spans (compile-pipeline phases,
// JIT builds, per-timestep compute, pack/send/wait/unpack, transport
// deliveries) into a lock-free single-writer ring buffer owned by the
// recording thread. SMPI ranks are threads, so one buffer per rank falls
// out naturally; smpi::run tags each rank thread with its rank id.
//
// Cost model:
//  - compiled out      — configure with -DJITFD_OBS=OFF: enabled() is a
//    constexpr false, every Span and instant() folds to nothing.
//  - disabled at runtime (default) — one relaxed atomic load and a
//    predicted branch per site.
//  - enabled           — a steady_clock read at span open, and one
//    40-byte ring-slot store (no locks, no allocation after the buffer
//    exists) at span close.
//
// Collection (collect()/reset()) is meant for quiescent moments — after
// smpi::run has joined its rank threads, or behind a barrier; readers do
// not synchronize with in-flight writers beyond an acquire on the ring
// head. Exports (Chrome trace JSON, summary table, RunProfile) live in
// obs/report.h.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace jitfd::obs {

/// Phase category of an event; the aggregation key of the summary table
/// and the `cat` field of the Chrome trace.
enum class Cat : std::uint8_t {
  Compile,  ///< Compiler-pipeline phases (clustering ... pattern lowering).
  Jit,      ///< JIT build / compile-cache activity.
  Compute,  ///< Stencil loop-nest execution.
  Pack,     ///< Halo pack (field -> send buffer).
  Send,     ///< Halo message injection.
  Wait,     ///< Blocked on receive completion.
  Unpack,   ///< Halo unpack (recv buffer -> field).
  Halo,     ///< Whole-exchange umbrella spans (update/start/finish).
  Msg,      ///< Transport-level delivery events (instant).
  Sync,     ///< Barriers and collectives.
  Sparse,   ///< Off-grid source/receiver operations.
  Run,      ///< apply()-level and per-timestep umbrella spans.
};

/// Number of categories. Cat::Run must stay the last enumerator; the
/// exhaustive to_string test iterates [0, kCatCount).
inline constexpr int kCatCount = static_cast<int>(Cat::Run) + 1;

const char* to_string(Cat cat);

/// One recorded event. `name` must be a string literal (stored by
/// pointer); t0 == t1 marks an instant event.
struct Event {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::int64_t a0 = 0;  ///< Site-defined (bytes, time step, ...).
  std::int32_t a1 = 0;  ///< Site-defined (spot id, cache-hit flag, ...).
  Cat cat = Cat::Run;
  std::uint8_t depth = 0;  ///< Span nesting depth at record time (0 = top).
};

namespace detail {

extern std::atomic<std::uint32_t> g_enabled;

std::uint64_t span_begin();
void span_end(const char* name, Cat cat, std::uint64_t t0_ns,
              std::int64_t a0, std::int32_t a1);
void record_instant(const char* name, Cat cat, std::int64_t a0,
                    std::int32_t a1);

}  // namespace detail

/// Nanoseconds since the process-wide trace epoch (first use).
std::uint64_t now_ns();

#ifndef JITFD_OBS_DISABLED
/// Whether any enabler (set_enabled or a live EnableScope) is active.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed) != 0;
}
#else
constexpr bool enabled() { return false; }
#endif

/// Global on/off switch (the JITFD_TRACE=1 environment variable sets it
/// before main). Idempotent; composes with EnableScope.
void set_enabled(bool on);

/// Ref-counted runtime enabler: tracing is on while any scope (on any
/// rank thread) is alive. `ApplyArgs{.trace = true}` uses this so
/// concurrent SPMD ranks do not turn each other's tracing off.
class EnableScope {
 public:
  explicit EnableScope(bool on);
  ~EnableScope();
  EnableScope(const EnableScope&) = delete;
  EnableScope& operator=(const EnableScope&) = delete;

 private:
  bool on_ = false;
};

/// Tag the calling thread's buffer (and future buffers it creates) with
/// an SMPI rank id. smpi::run calls this on every rank thread; untagged
/// threads record as rank 0.
void set_thread_rank(int rank);

/// Ring capacity (events per thread) for buffers created after the call;
/// rounded up to a power of two, minimum 8. Existing buffers keep their
/// size. Default 1<<16, overridable via JITFD_TRACE_RING.
void set_ring_capacity(std::size_t events);

/// RAII span. Construction snapshots the clock when tracing is enabled;
/// destruction (or close()) records the event. When tracing is disabled
/// at construction the span is inert, whatever happens later.
class Span {
 public:
  explicit Span(const char* name, Cat cat, std::int64_t a0 = 0,
                std::int32_t a1 = 0) {
    if (enabled()) {
      name_ = name;
      cat_ = cat;
      a0_ = a0;
      a1_ = a1;
      t0_ = detail::span_begin();
    }
  }
  ~Span() { close(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Record now instead of at scope exit. Idempotent.
  void close() {
    if (name_ != nullptr) {
      detail::span_end(name_, cat_, t0_, a0_, a1_);
      name_ = nullptr;
    }
  }

  /// Adjust the payload arguments before the span closes (e.g. byte
  /// counts or cache-hit flags known only mid-scope).
  void set_arg(std::int64_t a0) { a0_ = a0; }
  void set_aux(std::int32_t a1) { a1_ = a1; }

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  std::int64_t a0_ = 0;
  std::int32_t a1_ = 0;
  Cat cat_ = Cat::Run;
};

/// Record a zero-duration event (message deliveries, cache probes).
inline void instant(const char* name, Cat cat, std::int64_t a0 = 0,
                    std::int32_t a1 = 0) {
  if (enabled()) {
    detail::record_instant(name, cat, a0, a1);
  }
}

/// A snapshot of every thread's ring buffer, flattened and sorted by
/// (rank, start time). `dropped` counts events lost to ring wraparound.
struct TraceData {
  struct Rec {
    std::string name;
    Cat cat = Cat::Run;
    int rank = 0;
    std::uint64_t t0_ns = 0;
    std::uint64_t t1_ns = 0;
    std::int64_t a0 = 0;
    std::int32_t a1 = 0;
    std::uint8_t depth = 0;
  };
  std::vector<Rec> events;
  std::uint64_t dropped = 0;

  bool empty() const { return events.empty(); }
};

/// Snapshot all buffers — this process's rings plus any records merged
/// in via import_file(). Call when writers are quiescent (ranks joined
/// or behind a barrier) for a complete picture.
TraceData collect();

/// Discard all recorded events, including imported ones (buffers are
/// kept). Same quiescence caveat as collect().
void reset();

// --- Cross-process aggregation (process_shm transport) -----------------
//
// Rank processes cannot share ring buffers, so each child serializes its
// snapshot to a file before _exit and the launcher merges the files back
// into this registry. Timestamps are per-process (ns since the trace
// epoch pinned at first use), but the epoch itself sits on the
// system-wide CLOCK_MONOTONIC timeline, so records realign exactly:
// merged_t = t + (their_epoch_monotonic - our_epoch_monotonic).

/// Absolute CLOCK_MONOTONIC position of this process's trace epoch, in
/// nanoseconds. Pins the epoch if no event has been recorded yet.
std::uint64_t epoch_monotonic_ns();

/// Serialize collect() plus this process's epoch to a binary file.
/// Throws std::runtime_error if the file cannot be written.
void save_file(const std::string& path);

/// Merge a save_file() produced by another process into this registry,
/// realigning timestamps onto the local epoch. Imported records show up
/// in collect() (tagged with their recorded ranks) until reset().
/// Returns false if the file is missing or malformed.
bool import_file(const std::string& path);

}  // namespace jitfd::obs
