#include "obs/report.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

namespace jitfd::obs {

namespace {

double sec(std::uint64_t t0, std::uint64_t t1) {
  return static_cast<double>(t1 - t0) * 1e-9;
}

}  // namespace

double RunProfile::wall_s() const {
  double w = 0.0;
  for (const RankProfile& r : ranks) {
    w = std::max(w, r.wall_s);
  }
  return w;
}

std::uint64_t RunProfile::steps() const {
  std::uint64_t s = 0;
  for (const RankProfile& r : ranks) {
    s = std::max(s, r.steps);
  }
  return s;
}

std::uint64_t RunProfile::messages() const {
  std::uint64_t m = 0;
  for (const RankProfile& r : ranks) {
    m += r.messages;
  }
  return m;
}

std::uint64_t RunProfile::bytes_sent() const {
  std::uint64_t b = 0;
  for (const RankProfile& r : ranks) {
    b += r.bytes_sent;
  }
  return b;
}

double RunProfile::comm_fraction() const {
  double sum = 0.0;
  int n = 0;
  for (const RankProfile& r : ranks) {
    const double busy = r.comm_s() + r.compute_s;
    if (busy > 0.0) {
      sum += r.comm_s() / busy;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

RunProfile profile_from(const TraceData& data) {
  RunProfile out;
  out.dropped = data.dropped;
  std::map<int, RankProfile> per_rank;
  // Per rank: jit.run umbrella and what nests inside it, for the
  // derived-compute fallback of JIT runs.
  std::map<int, double> jit_run_s;
  std::map<int, double> halo_umbrella_s;
  std::map<int, double> sparse_s;
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> extent;

  for (const TraceData::Rec& e : data.events) {
    RankProfile& r = per_rank[e.rank];
    r.rank = e.rank;
    auto ext = extent.find(e.rank);
    if (ext == extent.end()) {
      extent.emplace(e.rank, std::pair{e.t0_ns, e.t1_ns});
    } else {
      ext->second.first = std::min(ext->second.first, e.t0_ns);
      ext->second.second = std::max(ext->second.second, e.t1_ns);
    }
    const double s = sec(e.t0_ns, e.t1_ns);
    switch (e.cat) {
      case Cat::Compute:
        r.compute_s += s;
        break;
      case Cat::Pack:
        r.pack_s += s;
        break;
      case Cat::Send:
        r.send_s += s;
        break;
      case Cat::Wait:
        r.wait_s += s;
        break;
      case Cat::Unpack:
        r.unpack_s += s;
        break;
      case Cat::Sync:
        r.sync_s += s;
        break;
      case Cat::Sparse:
        r.sparse_s += s;
        sparse_s[e.rank] += s;
        break;
      case Cat::Compile:
        r.compile_s += s;
        break;
      case Cat::Jit:
        if (e.name == "jit.build") {
          r.jit_build_s += s;
        }
        break;
      case Cat::Halo:
        halo_umbrella_s[e.rank] += s;
        break;
      case Cat::Msg:
        break;
      case Cat::Run:
        if (e.name == "step") {
          ++r.steps;
        } else if (e.name == "jit.run") {
          jit_run_s[e.rank] += s;
        }
        break;
    }
    if (e.cat == Cat::Send && e.name == "halo.send") {
      ++r.messages;
      r.bytes_sent += e.a0 > 0 ? static_cast<std::uint64_t>(e.a0) : 0;
    }
  }

  for (auto& [rank, r] : per_rank) {
    const auto ext = extent.at(rank);
    r.wall_s = sec(ext.first, ext.second);
    // Generated loops carry no spans, so for pure-JIT ranks compute is
    // the jit.run umbrella minus the communication and sparse callbacks
    // nested inside it.
    if (r.compute_s == 0.0) {
      auto it = jit_run_s.find(rank);
      if (it != jit_run_s.end()) {
        double derived = it->second;
        auto h = halo_umbrella_s.find(rank);
        if (h != halo_umbrella_s.end()) {
          derived -= h->second;
        }
        auto sp = sparse_s.find(rank);
        if (sp != sparse_s.end()) {
          derived -= sp->second;
        }
        r.compute_s = std::max(derived, 0.0);
      }
    }
    out.ranks.push_back(r);
  }
  return out;
}

std::string summary_table(const TraceData& data) {
  // (rank, name) -> {count, total_ns, cat}.
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    Cat cat = Cat::Run;
  };
  std::map<int, std::map<std::string, Agg>> table;
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> extent;
  for (const TraceData::Rec& e : data.events) {
    Agg& a = table[e.rank][e.name];
    ++a.count;
    a.total_ns += e.t1_ns - e.t0_ns;
    a.cat = e.cat;
    auto ext = extent.find(e.rank);
    if (ext == extent.end()) {
      extent.emplace(e.rank, std::pair{e.t0_ns, e.t1_ns});
    } else {
      ext->second.first = std::min(ext->second.first, e.t0_ns);
      ext->second.second = std::max(ext->second.second, e.t1_ns);
    }
  }

  std::ostringstream os;
  os << std::fixed;
  if (table.empty()) {
    os << "trace: no events recorded\n";
    return os.str();
  }
  for (const auto& [rank, phases] : table) {
    const auto ext = extent.at(rank);
    const double wall_ms = static_cast<double>(ext.second - ext.first) * 1e-6;
    os << "rank " << rank << "  (wall " << std::setprecision(3) << wall_ms
       << " ms)\n";
    os << "  " << std::left << std::setw(26) << "phase" << std::right
       << std::setw(10) << "count" << std::setw(14) << "total ms"
       << std::setw(9) << "%wall" << '\n';
    // Largest consumers first.
    std::vector<std::pair<std::string, Agg>> rows(phases.begin(),
                                                  phases.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.total_ns > b.second.total_ns;
    });
    for (const auto& [name, agg] : rows) {
      const double ms = static_cast<double>(agg.total_ns) * 1e-6;
      const double pct = wall_ms > 0.0 ? 100.0 * ms / wall_ms : 0.0;
      os << "  " << std::left << std::setw(26)
         << (name + " [" + to_string(agg.cat) + "]") << std::right
         << std::setw(10) << agg.count << std::setw(14)
         << std::setprecision(3) << ms << std::setw(8)
         << std::setprecision(1) << pct << "%\n";
    }
  }
  if (data.dropped > 0) {
    os << "(" << data.dropped
       << " events dropped to ring wraparound; raise JITFD_TRACE_RING)\n";
  }
  return os.str();
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const TraceData& data) {
  os << std::fixed << std::setprecision(3);
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"tool\": "
        "\"jitfd-obs\", \"dropped\": "
     << data.dropped << "},\n\"traceEvents\": [\n";
  // One named track per rank.
  std::set<int> ranks;
  for (const TraceData::Rec& e : data.events) {
    ranks.insert(e.rank);
  }
  bool first = true;
  for (const int r : ranks) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
       << r << ", \"args\": {\"name\": \"rank " << r << "\"}}";
  }
  for (const TraceData::Rec& e : data.events) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    const double ts_us = static_cast<double>(e.t0_ns) * 1e-3;
    os << "{\"name\": \"";
    json_escape(os, e.name);
    os << "\", \"cat\": \"" << to_string(e.cat) << "\", ";
    if (e.t1_ns > e.t0_ns) {
      const double dur_us = static_cast<double>(e.t1_ns - e.t0_ns) * 1e-3;
      os << "\"ph\": \"X\", \"ts\": " << ts_us << ", \"dur\": " << dur_us;
    } else {
      os << "\"ph\": \"i\", \"s\": \"t\", \"ts\": " << ts_us;
    }
    os << ", \"pid\": 0, \"tid\": " << e.rank << ", \"args\": {\"a0\": "
       << e.a0 << ", \"a1\": " << e.a1 << "}}";
  }
  os << "\n]\n}\n";
}

std::string chrome_trace_string(const TraceData& data) {
  std::ostringstream os;
  write_chrome_trace(os, data);
  return os.str();
}

bool write_chrome_trace_file(const std::string& path,
                             const TraceData& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  write_chrome_trace(out, data);
  return static_cast<bool>(out);
}

}  // namespace jitfd::obs
