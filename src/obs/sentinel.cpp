#include "obs/sentinel.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json_check.h"

namespace jitfd::obs {

namespace {

struct DriftEntry {
  double value = 0.0;  ///< |measured - predicted| of a perfmodel metric.
  double band = 0.0;   ///< Allowed drift (the baseline's is the contract).
};

struct Series {
  double median_seconds = 0.0;
  double spread_pct = 0.0;
  std::map<std::string, double> counters;
  std::map<std::string, DriftEntry> drift;
};

// Fields of a series entry that are not free-form counters.
bool reserved_key(const std::string& k) {
  return k == "name" || k == "repetitions" || k == "median_seconds" ||
         k == "spread_pct" || k == "drift";
}

bool load_series(std::string_view json, std::map<std::string, Series>& out,
                 std::string& err, const char* label) {
  JsonValue root;
  std::string perr;
  if (!json_parse(json, root, &perr)) {
    err = std::string(label) + ": " + perr;
    return false;
  }
  if (root.type != JsonValue::Type::Obj) {
    err = std::string(label) + ": top level is not an object";
    return false;
  }
  const JsonValue* series = root.find("series");
  if (series == nullptr || series->type != JsonValue::Type::Arr) {
    err = std::string(label) + ": missing \"series\" array";
    return false;
  }
  for (const JsonValue& s : series->arr) {
    const JsonValue* name = s.find("name");
    const JsonValue* med = s.find("median_seconds");
    if (s.type != JsonValue::Type::Obj || name == nullptr ||
        name->type != JsonValue::Type::Str || med == nullptr ||
        med->type != JsonValue::Type::Num) {
      err = std::string(label) +
            ": series entry missing \"name\"/\"median_seconds\"";
      return false;
    }
    Series entry;
    entry.median_seconds = med->num;
    if (const JsonValue* sp = s.find("spread_pct");
        sp != nullptr && sp->type == JsonValue::Type::Num) {
      entry.spread_pct = sp->num;
    }
    for (const auto& [k, v] : s.obj) {
      if (!reserved_key(k) && v.type == JsonValue::Type::Num) {
        entry.counters[k] = v.num;
      }
    }
    if (const JsonValue* drift = s.find("drift");
        drift != nullptr && drift->type == JsonValue::Type::Obj) {
      for (const auto& [metric, g] : drift->obj) {
        const JsonValue* value = g.find("value");
        const JsonValue* band = g.find("band");
        if (g.type != JsonValue::Type::Obj || value == nullptr ||
            value->type != JsonValue::Type::Num || band == nullptr ||
            band->type != JsonValue::Type::Num) {
          err = std::string(label) + ": series \"" + name->str +
                "\" drift metric \"" + metric +
                "\" missing numeric \"value\"/\"band\"";
          return false;
        }
        entry.drift[metric] = {value->num, band->num};
      }
    }
    out[name->str] = std::move(entry);
  }
  return true;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

SentinelResult sentinel_compare(std::string_view baseline_json,
                                std::string_view fresh_json,
                                const SentinelOptions& opts) {
  SentinelResult res;
  std::map<std::string, Series> baseline;
  std::map<std::string, Series> fresh;
  if (!load_series(baseline_json, baseline, res.error, "baseline") ||
      !load_series(fresh_json, fresh, res.error, "fresh")) {
    return res;
  }
  if (baseline.empty()) {
    res.error = "baseline: no series to compare";
    return res;
  }

  for (const auto& [name, base] : baseline) {
    ++res.series_checked;
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      res.failures.push_back("series \"" + name +
                             "\" missing from fresh report");
      continue;
    }
    const Series& f = it->second;
    const double fresh_median = f.median_seconds * opts.scale_fresh;

    if (base.median_seconds >= opts.min_seconds &&
        base.median_seconds > 0.0) {
      const double band =
          opts.tolerance_pct + std::max(base.spread_pct, f.spread_pct);
      const double limit = base.median_seconds * (1.0 + band / 100.0);
      if (fresh_median > limit) {
        const double pct =
            100.0 * (fresh_median / base.median_seconds - 1.0);
        res.failures.push_back(
            "series \"" + name + "\" regressed: " + fmt(fresh_median) +
            "s vs baseline " + fmt(base.median_seconds) + "s (+" + fmt(pct) +
            "%, allowed +" + fmt(band) + "%)");
        continue;
      }
      res.notes.push_back("series \"" + name + "\": " + fmt(fresh_median) +
                          "s vs " + fmt(base.median_seconds) + "s (allowed +" +
                          fmt(band) + "%) ok");
    } else {
      res.notes.push_back("series \"" + name +
                          "\": baseline below min-seconds, timing skipped");
    }

    if (opts.check_counters) {
      bool counters_ok = true;
      for (const auto& [key, want] : base.counters) {
        const auto cit = f.counters.find(key);
        if (cit == f.counters.end()) {
          res.failures.push_back("series \"" + name +
                                 "\" lost counter \"" + key + "\"");
          counters_ok = false;
          continue;
        }
        const double got = cit->second;
        const double tol =
            std::abs(want) * opts.counter_tolerance_pct / 100.0;
        if (std::abs(got - want) > tol) {
          res.failures.push_back("series \"" + name + "\" counter \"" + key +
                                 "\" drifted: " + fmt(got) + " vs baseline " +
                                 fmt(want));
          counters_ok = false;
        }
      }
      if (counters_ok && !base.counters.empty()) {
        res.notes.push_back("series \"" + name + "\": " +
                            std::to_string(base.counters.size()) +
                            " counters match");
      }
    }

    // Drift gates: the committed band is the perfmodel contract; the
    // fresh measurement must stay inside it even when total time passed.
    bool drift_ok = true;
    for (const auto& [metric, gate] : base.drift) {
      const auto dit = f.drift.find(metric);
      if (dit == f.drift.end()) {
        res.failures.push_back("series \"" + name + "\" lost drift metric \"" +
                               metric + "\"");
        drift_ok = false;
        continue;
      }
      const double fresh_drift = dit->second.value + opts.drift_shift;
      if (fresh_drift > gate.band) {
        res.failures.push_back(
            "series \"" + name + "\" drift metric \"" + metric +
            "\" left the perfmodel band: drift " + fmt(fresh_drift) +
            " vs committed band " + fmt(gate.band));
        drift_ok = false;
      }
    }
    if (drift_ok && !base.drift.empty()) {
      res.notes.push_back("series \"" + name + "\": " +
                          std::to_string(base.drift.size()) +
                          " drift gates inside their bands");
    }
  }

  res.ok = res.failures.empty();
  return res;
}

std::string SentinelResult::report() const {
  std::ostringstream os;
  if (!error.empty()) {
    os << "perf_sentinel: error: " << error << "\n";
    return os.str();
  }
  for (const std::string& n : notes) {
    os << "  " << n << "\n";
  }
  for (const std::string& f : failures) {
    os << "  FAIL: " << f << "\n";
  }
  os << "perf_sentinel: " << series_checked << " series checked, "
     << failures.size() << " regression" << (failures.size() == 1 ? "" : "s")
     << (ok ? " — ok" : " — FAIL") << "\n";
  return os.str();
}

}  // namespace jitfd::obs
