#include "obs/events.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "core/env.h"
#include "obs/trace.h"

namespace jitfd::obs::events {

namespace detail {

std::atomic<std::uint32_t> g_enabled{0};

}  // namespace detail

namespace {

constexpr std::uint32_t kForceBit = 1U << 31;

std::atomic<std::size_t> g_capacity{4096};

std::size_t round_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

struct Slot {
  const char* name = nullptr;
  EvCat cat = EvCat::Run;
  std::int64_t step = 0;
  std::uint64_t t_ns = 0;
  int nkv = 0;
  const char* keys[kMaxKv] = {};
  double vals[kMaxKv] = {};
};

/// Single-writer ring of one thread; same collection contract as the
/// trace ring (readers run only while the writer is quiescent).
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity, int rank_)
      : slots(capacity), mask(capacity - 1), rank(rank_) {}

  std::vector<Slot> slots;
  std::size_t mask;
  std::atomic<std::uint64_t> head{0};
  int rank;
};

struct Registry {
  std::mutex mtx;
  std::vector<std::unique_ptr<ThreadRing>> rings;
};

Registry& registry() {
  static Registry* r = new Registry;  // Leaked: rank threads may outlive
  return *r;                          // static destruction order.
}

thread_local ThreadRing* t_ring = nullptr;
thread_local int t_rank = 0;

ThreadRing* attach_thread() {
  auto ring = std::make_unique<ThreadRing>(
      round_pow2(g_capacity.load(std::memory_order_relaxed)), t_rank);
  t_ring = ring.get();
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  reg.rings.push_back(std::move(ring));
  return t_ring;
}

/// Reads JITFD_EVENTS / JITFD_EVENTS_RING before main. Strict-parse
/// failures cannot propagate out of a static initializer, so they are
/// reported and fatal here.
const bool g_env_init = [] {
  try {
    const std::int64_t ring = jitfd::env::get_int("JITFD_EVENTS_RING", 0);
    if (ring > 0) {
      set_ring_capacity(static_cast<std::size_t>(ring));
    }
    if (jitfd::env::get_bool("JITFD_EVENTS", false)) {
      set_enabled(true);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "jitfd: %s\n", ex.what());
    std::exit(2);
  }
  return true;
}();

void append_json_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    std::ostringstream tmp;
    tmp.precision(17);
    tmp << v;
    os << tmp.str();
  } else {
    os << "null";
  }
}

}  // namespace

const char* to_string(EvCat cat) {
  switch (cat) {
    case EvCat::Health:
      return "health";
    case EvCat::Halo:
      return "halo";
    case EvCat::Run:
      return "run";
    case EvCat::Solver:
      return "solver";
  }
  return "?";
}

void set_enabled(bool on) {
  if (on) {
    detail::g_enabled.fetch_or(kForceBit, std::memory_order_relaxed);
  } else {
    detail::g_enabled.fetch_and(~kForceBit, std::memory_order_relaxed);
  }
}

EnableScope::EnableScope(bool on) : on_(on) {
  if (on_) {
    detail::g_enabled.fetch_add(1, std::memory_order_relaxed);
  }
}

EnableScope::~EnableScope() {
  if (on_) {
    detail::g_enabled.fetch_sub(1, std::memory_order_relaxed);
  }
}

void set_thread_rank(int rank) {
  t_rank = rank;
  if (t_ring != nullptr) {
    t_ring->rank = rank;
  }
}

void set_ring_capacity(std::size_t events) {
  g_capacity.store(round_pow2(events), std::memory_order_relaxed);
}

namespace detail {

void record(const char* name, EvCat cat, std::int64_t step, const KV* kvs,
            int nkv) {
  ThreadRing* r = t_ring != nullptr ? t_ring : attach_thread();
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  Slot& s = r->slots[static_cast<std::size_t>(h) & r->mask];
  s.name = name;
  s.cat = cat;
  s.step = step;
  s.t_ns = now_ns();
  s.nkv = nkv < kMaxKv ? nkv : kMaxKv;
  for (int i = 0; i < s.nkv; ++i) {
    s.keys[i] = kvs[i].key;
    s.vals[i] = kvs[i].value;
  }
  r->head.store(h + 1, std::memory_order_release);
}

}  // namespace detail

EventData collect() {
  EventData out;
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  for (const auto& ring : reg.rings) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    const std::uint64_t cap = ring->mask + 1;
    const std::uint64_t n = h < cap ? h : cap;
    out.dropped += h - n;
    for (std::uint64_t i = h - n; i < h; ++i) {
      const Slot& s = ring->slots[static_cast<std::size_t>(i) & ring->mask];
      EventData::Rec rec;
      rec.name = s.name != nullptr ? s.name : "?";
      rec.cat = s.cat;
      rec.rank = ring->rank;
      rec.step = s.step;
      rec.t_ns = s.t_ns;
      for (int k = 0; k < s.nkv; ++k) {
        rec.kv.emplace_back(s.keys[k] != nullptr ? s.keys[k] : "?",
                            s.vals[k]);
      }
      out.events.push_back(std::move(rec));
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const EventData::Rec& a, const EventData::Rec& b) {
                     return a.rank != b.rank ? a.rank < b.rank
                                             : a.t_ns < b.t_ns;
                   });
  return out;
}

void reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mtx);
  for (const auto& ring : reg.rings) {
    ring->head.store(0, std::memory_order_release);
  }
}

std::string to_json(const EventData& data) {
  std::ostringstream os;
  os << "{\n  \"events\": [";
  bool first = true;
  for (const EventData::Rec& r : data.events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << r.name << "\", \"cat\": \""
       << to_string(r.cat) << "\", \"rank\": " << r.rank
       << ", \"step\": " << r.step << ", \"t_ns\": " << r.t_ns
       << ", \"kv\": {";
    bool kf = true;
    for (const auto& [k, v] : r.kv) {
      if (!kf) {
        os << ", ";
      }
      kf = false;
      os << '"' << k << "\": ";
      append_json_number(os, v);
    }
    os << "}}";
  }
  os << "\n  ],\n  \"dropped\": " << data.dropped << "\n}\n";
  return os.str();
}

}  // namespace jitfd::obs::events
