#include "smpi/comm.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/trace.h"

namespace smpi {

Status Request::wait() {
  if (state_ == nullptr) {
    return Status{};
  }
  state_->wait();
  return state_->status;
}

bool Request::test() const { return state_ == nullptr || state_->test(); }

World::World(std::unique_ptr<Transport> transport)
    : transport_(std::move(transport)) {
  if (transport_ == nullptr) {
    throw std::invalid_argument("smpi::World needs a transport");
  }
}

void Communicator::send(const void* buf, std::size_t bytes, int dest,
                        int tag) const {
  if (dest == kProcNull) {
    return;
  }
  assert(dest >= 0 && dest < size());
  world_->impl().send(rank_, dest, tag, Channel::User, buf, bytes);
}

Status Communicator::recv(void* buf, std::size_t bytes, int source,
                          int tag) const {
  if (source == kProcNull) {
    return Status{kProcNull, tag, 0};
  }
  auto op = world_->impl().post_recv(rank_, buf, bytes, source, tag,
                                     Channel::User);
  op->wait();
  return op->status;
}

Request Communicator::isend(const void* buf, std::size_t bytes, int dest,
                            int tag) const {
  send(buf, bytes, dest, tag);
  auto done = std::make_shared<OpState>();
  done->complete(Status{rank_, tag, bytes});
  return Request(std::move(done));
}

Request Communicator::irecv(void* buf, std::size_t bytes, int source,
                            int tag) const {
  if (source == kProcNull) {
    auto done = std::make_shared<OpState>();
    done->complete(Status{kProcNull, tag, 0});
    return Request(std::move(done));
  }
  return Request(world_->impl().post_recv(rank_, buf, bytes, source, tag,
                                          Channel::User));
}

Status Communicator::sendrecv(const void* sendbuf, std::size_t send_bytes,
                              int dest, int send_tag, void* recvbuf,
                              std::size_t recv_bytes, int source,
                              int recv_tag) const {
  Request rx = irecv(recvbuf, recv_bytes, source, recv_tag);
  send(sendbuf, send_bytes, dest, send_tag);
  return rx.wait();
}

void Communicator::barrier() const {
  const jitfd::obs::Span span("smpi.barrier", jitfd::obs::Cat::Sync);
  world_->barrier(rank_);
}

namespace {

template <typename T>
void apply_reduce(ReduceOp op, std::span<T> acc, std::span<const T> in) {
  assert(acc.size() == in.size());
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::Sum:
        acc[i] += in[i];
        break;
      case ReduceOp::Min:
        acc[i] = std::min(acc[i], in[i]);
        break;
      case ReduceOp::Max:
        acc[i] = std::max(acc[i], in[i]);
        break;
      case ReduceOp::Prod:
        acc[i] *= in[i];
        break;
    }
  }
}

}  // namespace

template <typename T>
void Communicator::allreduce_impl(std::span<T> values, ReduceOp op) const {
  // Reduce-to-root then broadcast. Simple and adequate: collectives are on
  // the control path (norms, diagnostics), never in the halo-exchange inner
  // loop.
  const std::size_t bytes = values.size_bytes();
  Transport& t = world_->impl();
  // Closed before the broadcast so the nested bcast span isn't counted
  // twice in the Sync totals.
  jitfd::obs::Span span("smpi.allreduce", jitfd::obs::Cat::Sync,
                        static_cast<std::int64_t>(bytes));
  if (rank_ == 0) {
    std::vector<T> incoming(values.size());
    for (int src = 1; src < size(); ++src) {
      auto rx = t.post_recv(rank_, incoming.data(), bytes, src, kCollectiveTag,
                            Channel::Collective);
      rx->wait();
      apply_reduce<T>(op, values, incoming);
    }
  } else {
    t.send(rank_, 0, kCollectiveTag, Channel::Collective, values.data(),
           bytes);
  }
  span.close();
  bcast(values.data(), bytes, 0);
}

void Communicator::allreduce(std::span<double> values, ReduceOp op) const {
  allreduce_impl(values, op);
}

void Communicator::allreduce(std::span<std::int64_t> values,
                             ReduceOp op) const {
  allreduce_impl(values, op);
}

void Communicator::bcast(void* buf, std::size_t bytes, int root) const {
  const jitfd::obs::Span span("smpi.bcast", jitfd::obs::Cat::Sync,
                              static_cast<std::int64_t>(bytes), root);
  Transport& t = world_->impl();
  if (rank_ == root) {
    for (int dst = 0; dst < size(); ++dst) {
      if (dst != root) {
        t.send(rank_, dst, kCollectiveTag, Channel::Collective, buf, bytes);
      }
    }
  } else {
    auto rx = t.post_recv(rank_, buf, bytes, root, kCollectiveTag,
                          Channel::Collective);
    rx->wait();
  }
}

void Communicator::gather(const void* sendbuf, std::size_t bytes,
                          void* recvbuf, int root) const {
  const jitfd::obs::Span span("smpi.gather", jitfd::obs::Cat::Sync,
                              static_cast<std::int64_t>(bytes), root);
  Transport& t = world_->impl();
  if (rank_ == root) {
    auto* out = static_cast<std::byte*>(recvbuf);
    std::memcpy(out + static_cast<std::size_t>(root) * bytes, sendbuf, bytes);
    for (int src = 0; src < size(); ++src) {
      if (src == root) {
        continue;
      }
      auto rx =
          t.post_recv(rank_, out + static_cast<std::size_t>(src) * bytes,
                      bytes, src, kCollectiveTag, Channel::Collective);
      rx->wait();
    }
  } else {
    t.send(rank_, root, kCollectiveTag, Channel::Collective, sendbuf, bytes);
  }
}

}  // namespace smpi
