// Launching rank threads: the SPMD entry point of the substrate.
#pragma once

#include <functional>

#include "smpi/comm.h"

namespace smpi {

/// Run `body` on `nranks` concurrent rank threads, each receiving its own
/// Communicator over a fresh World. Joins all ranks before returning.
/// Exceptions thrown by any rank are captured and the first one (by rank
/// order) is rethrown on the calling thread after all ranks have finished.
void run(int nranks, const std::function<void(Communicator&)>& body);

}  // namespace smpi
