// Launching ranks: the transport-agnostic SPMD entry point.
//
// smpi::launch runs one body as nranks SPMD ranks over a Transport
// chosen at runtime:
//
//   LaunchOptions        | transport realized as
//   ---------------------+------------------------------------------
//   .transport unset     | JITFD_TRANSPORT (default: threads)
//   TransportKind::Threads     | rank threads in this process
//   TransportKind::ProcessShm  | forked rank processes over
//                              | shared-memory rings (oversubscribable
//                              | far past core count)
//
// Error contract (identical on every transport): all ranks run to
// completion where possible, then the first failure by rank order is
// rethrown on the calling thread. Rank 0 always runs in the calling
// process/thread, so its exceptions keep their original type; under
// process_shm, failures of forked ranks arrive as RankError
// (smpi/proc_world.h) carrying the rank and the original what().
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "smpi/comm.h"
#include "smpi/proc_world.h"
#include "smpi/transport.h"

namespace smpi {

struct LaunchOptions {
  int nranks = 1;

  /// Unset: resolve from JITFD_TRANSPORT (strictly parsed; default
  /// threads).
  std::optional<TransportKind> transport;

  /// process_shm only: per-direction ring capacity in KiB, rounded up to
  /// a power of two. 0 resolves from JITFD_SHM_RING_KB (default 256).
  std::size_t shm_ring_kb = 0;
};

/// Run `body` as opts.nranks concurrent ranks, each receiving its own
/// Communicator. Returns after every rank has finished; rethrows the
/// first error by rank order (see the contract above).
void launch(const LaunchOptions& opts,
            const std::function<void(Communicator&)>& body);

/// Pre-transport spelling, kept for existing call sites; equivalent to
/// launch({.nranks = nranks}) — which means the transport follows
/// JITFD_TRANSPORT, no longer unconditionally threads. Prefer launch()
/// in new code.
void run(int nranks, const std::function<void(Communicator&)>& body);

}  // namespace smpi
