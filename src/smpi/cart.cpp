#include "smpi/cart.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace smpi {

std::vector<int> dims_create(int nranks, int ndims, std::vector<int> dims) {
  if (ndims < 1) {
    throw std::invalid_argument("dims_create: ndims must be >= 1");
  }
  dims.resize(static_cast<std::size_t>(ndims), 0);

  int fixed_product = 1;
  int free_count = 0;
  for (const int d : dims) {
    if (d < 0) {
      throw std::invalid_argument("dims_create: negative dimension");
    }
    if (d > 0) {
      fixed_product *= d;
    } else {
      ++free_count;
    }
  }
  if (fixed_product == 0 || nranks % fixed_product != 0) {
    throw std::invalid_argument(
        "dims_create: fixed dimensions do not divide nranks");
  }
  int remaining = nranks / fixed_product;
  if (free_count == 0) {
    if (remaining != 1) {
      throw std::invalid_argument("dims_create: dims do not multiply to nranks");
    }
    return dims;
  }

  // Greedy balanced factorization: repeatedly strip the largest prime
  // factor and assign it to the currently smallest free dimension, then
  // sort free entries non-increasing (the MPI_Dims_create convention).
  std::vector<int> factors;
  int n = remaining;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) {
    factors.push_back(n);
  }
  std::sort(factors.rbegin(), factors.rend());

  std::vector<int> free_dims(static_cast<std::size_t>(free_count), 1);
  for (const int f : factors) {
    auto smallest = std::min_element(free_dims.begin(), free_dims.end());
    *smallest *= f;
  }
  std::sort(free_dims.rbegin(), free_dims.rend());

  std::size_t next_free = 0;
  for (int& d : dims) {
    if (d == 0) {
      d = free_dims[next_free++];
    }
  }
  return dims;
}

CartComm::CartComm(Communicator comm, std::vector<int> dims)
    : comm_(comm), dims_(std::move(dims)) {
  int product = 1;
  for (const int d : dims_) {
    if (d < 1) {
      throw std::invalid_argument("CartComm: dimensions must be positive");
    }
    product *= d;
  }
  if (product != comm_.size()) {
    throw std::invalid_argument(
        "CartComm: topology does not match communicator size");
  }
  my_coords_ = coords(comm_.rank());
}

std::vector<int> CartComm::coords(int rank) const {
  assert(rank >= 0 && rank < size());
  std::vector<int> c(dims_.size());
  int rest = rank;
  for (int d = ndims() - 1; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    c[ud] = rest % dims_[ud];
    rest /= dims_[ud];
  }
  return c;
}

int CartComm::rank_of(const std::vector<int>& coords) const {
  assert(coords.size() == dims_.size());
  int rank = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (coords[d] < 0 || coords[d] >= dims_[d]) {
      return kProcNull;
    }
    rank = rank * dims_[d] + coords[d];
  }
  return rank;
}

CartComm::Shift CartComm::shift(int dim, int disp) const {
  assert(dim >= 0 && dim < ndims());
  std::vector<int> c = my_coords_;
  const auto ud = static_cast<std::size_t>(dim);
  Shift result;
  c[ud] = my_coords_[ud] + disp;
  result.dest = rank_of(c);
  c[ud] = my_coords_[ud] - disp;
  result.source = rank_of(c);
  return result;
}

int CartComm::neighbor(const std::vector<int>& offset) const {
  assert(offset.size() == dims_.size());
  std::vector<int> c(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    c[d] = my_coords_[d] + offset[d];
  }
  return rank_of(c);
}

std::vector<std::vector<int>> CartComm::star_neighborhood() const {
  std::vector<std::vector<int>> result;
  const int nd = ndims();
  std::vector<int> offset(static_cast<std::size_t>(nd), -1);
  while (true) {
    const bool all_zero =
        std::all_of(offset.begin(), offset.end(), [](int o) { return o == 0; });
    if (!all_zero && neighbor(offset) != kProcNull) {
      result.push_back(offset);
    }
    // Odometer increment over {-1,0,1}^nd.
    int d = nd - 1;
    for (; d >= 0; --d) {
      const auto ud = static_cast<std::size_t>(d);
      if (offset[ud] < 1) {
        ++offset[ud];
        break;
      }
      offset[ud] = -1;
    }
    if (d < 0) {
      break;
    }
  }
  return result;
}

std::vector<std::vector<int>> CartComm::face_neighborhood() const {
  std::vector<std::vector<int>> result;
  const auto nd = static_cast<std::size_t>(ndims());
  for (std::size_t d = 0; d < nd; ++d) {
    for (const int disp : {-1, +1}) {
      std::vector<int> offset(nd, 0);
      offset[d] = disp;
      if (neighbor(offset) != kProcNull) {
        result.push_back(std::move(offset));
      }
    }
  }
  return result;
}

}  // namespace smpi
