// Basic shared types for the SMPI message-passing substrate.
//
// SMPI is a threads-as-ranks implementation of the MPI subset required by
// the generated halo-exchange code: tagged point-to-point messaging
// (blocking and nonblocking with test/wait), collectives, and Cartesian
// topologies. Each rank is a thread inside one process; message payloads
// are copied between address spaces exactly once (send side), mirroring
// MPI's buffered-send semantics.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace smpi {

/// Wildcard source for receive matching (mirrors MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receive matching (mirrors MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;
/// Null process: sends/recvs to it are no-ops (mirrors MPI_PROC_NULL).
inline constexpr int kProcNull = -2;

/// Reduction operators for allreduce/reduce.
enum class ReduceOp {
  Sum,
  Min,
  Max,
  Prod,
};

/// Message channels separate user point-to-point traffic from internal
/// collective traffic so collectives can never match user receives.
enum class Channel : std::uint8_t {
  User = 0,
  Collective = 1,
};

/// Completion status of a receive (source/tag/size of the matched message).
struct Status {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// Transport-level delivery counters, shared by every mailbox of a World.
/// `rendezvous` deliveries copy the sender's span straight into a posted
/// receive buffer (one payload copy); `queued` deliveries materialize a
/// pooled payload first and pay a second copy when later matched, so
/// payload_copies / (rendezvous + queued) is the mean copies per message
/// — exactly 1.0 when every receive is pre-posted.
struct TransportCounters {
  std::atomic<std::uint64_t> rendezvous{0};
  std::atomic<std::uint64_t> queued{0};
  std::atomic<std::uint64_t> payload_copies{0};
  std::atomic<std::uint64_t> bytes_delivered{0};

  double copies_per_message() const {
    const std::uint64_t n = rendezvous.load(std::memory_order_relaxed) +
                            queued.load(std::memory_order_relaxed);
    return n == 0 ? 0.0
                  : static_cast<double>(
                        payload_copies.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }
};

}  // namespace smpi
