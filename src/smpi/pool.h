// Size-bucketed message-buffer pool.
//
// Payloads of unexpected messages (deliveries with no matching posted
// receive) are the only allocations left on the SMPI hot path. The pool
// recycles them: buffers are grouped by power-of-two capacity buckets, so
// after one warmup exchange a steady-state stepping loop allocates
// nothing. One pool is shared per World (all ranks), guarded by its own
// mutex; the lock is never held while user data is being copied.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace smpi {

/// A pooled byte buffer: uninitialized storage with an explicit logical
/// size. Unlike std::vector, shrinking/growing within `capacity` never
/// memsets, so recycling a buffer costs zero byte traffic.
struct PoolBuffer {
  std::unique_ptr<std::byte[]> data;
  std::size_t capacity = 0;
  std::size_t size = 0;

  explicit operator bool() const { return data != nullptr; }
};

class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      ///< acquire() served from a bucket.
    std::uint64_t misses = 0;    ///< acquire() had to allocate.
    std::uint64_t releases = 0;  ///< Buffers returned (pooled or dropped).
    std::uint64_t pooled_buffers = 0;  ///< Currently idle in buckets.
    std::uint64_t pooled_bytes = 0;    ///< Capacity held by idle buffers.
  };

  /// A buffer with capacity >= bytes and size == bytes; contents are
  /// uninitialized. Zero-byte requests still round-trip through the
  /// smallest bucket so hit/miss accounting stays uniform.
  PoolBuffer acquire(std::size_t bytes);

  /// Return a buffer for reuse. Buckets are bounded (kMaxPerBucket);
  /// overflow buffers are simply freed.
  void release(PoolBuffer&& buf);

  /// Free every idle pooled buffer (diagnostics / memory pressure).
  void trim();

  Stats stats() const;

 private:
  // Capacities are 2^b for b in [kMinShift, kMinShift + kBuckets); larger
  // requests are allocated exactly and never pooled.
  static constexpr std::size_t kMinShift = 6;  // 64-byte minimum bucket.
  static constexpr std::size_t kBuckets = 26;  // Up to 2 GiB messages.
  static constexpr std::size_t kMaxPerBucket = 64;

  static std::size_t bucket_of(std::size_t bytes);
  static std::size_t bucket_bytes(std::size_t b) { return 1ULL << (kMinShift + b); }

  mutable std::mutex mtx_;
  std::array<std::vector<PoolBuffer>, kBuckets> buckets_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t releases_ = 0;
};

}  // namespace smpi
