// Per-rank message matching engine.
//
// Each rank owns one Mailbox. Senders deliver into the destination rank's
// mailbox; receivers post receive descriptors into their own. Matching
// follows MPI semantics: a posted receive matches the earliest pending
// message whose (source, tag, channel) is compatible, and pending messages
// are matched in arrival order per (source, tag) pair (non-overtaking).
//
// Delivery is single-copy whenever a matching receive is already posted:
// the sender's span is copied straight into the posted buffer (rendezvous)
// with no intermediate payload. Only unexpected messages materialize a
// payload, drawn from the World's BufferPool and returned to it when the
// message is eventually matched.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "smpi/pool.h"
#include "smpi/types.h"

namespace smpi {

/// Shared completion state of one nonblocking operation.
///
/// Send-side operations complete at enqueue time (buffered semantics), so
/// their OpState is constructed already-done. Receive-side OpStates are
/// completed either at post time (when a matching message is already
/// pending), later by the delivering sender thread (threads transport),
/// or by the posting rank's own endpoint polling (process transport, via
/// the Progressor hook).
struct OpState {
  /// Polling driver for transports whose receives complete only when the
  /// posting rank drains its endpoint (process_shm). The threads
  /// transport leaves it null: sender threads complete ops directly.
  /// wait()/test() may only be called from the posting rank (the MPI
  /// contract), so driving the endpoint from them is race-free.
  class Progressor {
   public:
    virtual void progress() = 0;

   protected:
    ~Progressor() = default;
  };

  std::mutex mtx;
  std::condition_variable cv;
  bool done = false;
  Status status;
  Progressor* progressor = nullptr;

  // Receive descriptor (only meaningful while !done for receives).
  void* recv_buf = nullptr;
  std::size_t recv_capacity = 0;
  int want_source = kAnySource;
  int want_tag = kAnyTag;
  Channel channel = Channel::User;

  void complete(const Status& st) {
    {
      const std::lock_guard<std::mutex> lock(mtx);
      done = true;
      status = st;
    }
    cv.notify_all();
  }

  bool done_now() {
    const std::lock_guard<std::mutex> lock(mtx);
    return done;
  }

  void wait() {
    if (progressor != nullptr) {
      // Poll-driven completion with a politeness ramp: spin briefly, then
      // yield, then sleep — oversubscribed rank processes must not burn
      // whole cores waiting on a peer that owns the same core.
      int idle = 0;
      while (!done_now()) {
        progressor->progress();
        if (done_now()) {
          return;
        }
        ++idle;
        if (idle > 4096) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        } else if (idle > 64) {
          std::this_thread::yield();
        }
      }
      return;
    }
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [&] { return done; });
  }

  bool test() {
    if (progressor != nullptr && !done_now()) {
      progressor->progress();
    }
    const std::lock_guard<std::mutex> lock(mtx);
    return done;
  }
};

/// One queued (unexpected) message; the pooled payload is owned by the
/// mailbox until matched, then returned to the pool.
struct Message {
  int source = 0;
  int tag = 0;
  Channel channel = Channel::User;
  PoolBuffer payload;
};

/// Mailbox: the unexpected-message queue plus the posted-receive queue of
/// one rank, guarded by a single mutex. Senders and the owning receiver
/// thread are the only parties that touch it. `pool` and `counters` are
/// owned by the World and shared across all of its mailboxes.
class Mailbox {
 public:
  Mailbox(BufferPool* pool, TransportCounters* counters)
      : pool_(pool), counters_(counters) {}

  /// Deliver `bytes` from `data`; copies directly into a posted receive
  /// buffer if one is compatible (single-copy rendezvous), otherwise
  /// copies into a pooled payload on the unexpected queue. Called from
  /// sender threads; `data` need only stay valid for the duration of the
  /// call (buffered-send semantics).
  void deliver(int source, int tag, Channel channel, const void* data,
               std::size_t bytes);

  /// Post a receive. If a pending message already matches, the OpState is
  /// completed before returning. The descriptor fields of `op` must be
  /// filled in by the caller.
  void post_recv(const std::shared_ptr<OpState>& op);

  /// Number of messages sitting in the unexpected queue (diagnostics).
  std::size_t pending_messages() const;

 private:
  static bool matches(const OpState& op, int source, int tag, Channel channel);

  BufferPool* pool_;
  TransportCounters* counters_;
  mutable std::mutex mtx_;
  std::deque<Message> unexpected_;
  std::deque<std::shared_ptr<OpState>> posted_;
};

}  // namespace smpi
