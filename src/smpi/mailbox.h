// Per-rank message matching engine.
//
// Each rank owns one Mailbox. Senders deliver into the destination rank's
// mailbox; receivers post receive descriptors into their own. Matching
// follows MPI semantics: a posted receive matches the earliest pending
// message whose (source, tag, channel) is compatible, and pending messages
// are matched in arrival order per (source, tag) pair (non-overtaking).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "smpi/types.h"

namespace smpi {

/// Shared completion state of one nonblocking operation.
///
/// Send-side operations complete at enqueue time (buffered semantics), so
/// their OpState is constructed already-done. Receive-side OpStates are
/// completed either at post time (when a matching message is already
/// pending) or later by the delivering sender thread.
struct OpState {
  std::mutex mtx;
  std::condition_variable cv;
  bool done = false;
  Status status;

  // Receive descriptor (only meaningful while !done for receives).
  void* recv_buf = nullptr;
  std::size_t recv_capacity = 0;
  int want_source = kAnySource;
  int want_tag = kAnyTag;
  Channel channel = Channel::User;

  void complete(const Status& st) {
    {
      const std::lock_guard<std::mutex> lock(mtx);
      done = true;
      status = st;
    }
    cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mtx);
    cv.wait(lock, [&] { return done; });
  }

  bool test() {
    const std::lock_guard<std::mutex> lock(mtx);
    return done;
  }
};

/// One in-flight message (payload owned by the mailbox until matched).
struct Message {
  int source = 0;
  int tag = 0;
  Channel channel = Channel::User;
  std::vector<std::byte> payload;
};

/// Mailbox: the unexpected-message queue plus the posted-receive queue of
/// one rank, guarded by a single mutex. Senders and the owning receiver
/// thread are the only parties that touch it.
class Mailbox {
 public:
  /// Deliver a message; matches a posted receive if one is compatible,
  /// otherwise appends to the unexpected queue. Called from sender threads.
  void deliver(Message&& msg);

  /// Post a receive. If a pending message already matches, the OpState is
  /// completed before returning. The descriptor fields of `op` must be
  /// filled in by the caller.
  void post_recv(const std::shared_ptr<OpState>& op);

  /// Number of messages sitting in the unexpected queue (diagnostics).
  std::size_t pending_messages() const;

 private:
  static bool matches(const OpState& op, const Message& msg);

  mutable std::mutex mtx_;
  std::deque<Message> unexpected_;
  std::deque<std::shared_ptr<OpState>> posted_;
};

}  // namespace smpi
