#include "smpi/runtime.h"

#include <exception>
#include <thread>
#include <vector>

#include "obs/events.h"
#include "obs/trace.h"

namespace smpi {

void run(int nranks, const std::function<void(Communicator&)>& body) {
  World world(nranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  // Rank 0 runs on the calling thread so single-rank runs need no thread
  // creation and debuggers see the "main" rank on the main stack.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks - 1));
  for (int r = 1; r < nranks; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      jitfd::obs::set_thread_rank(r);
      jitfd::obs::events::set_thread_rank(r);
      Communicator comm(&world, r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  {
    jitfd::obs::set_thread_rank(0);
    jitfd::obs::events::set_thread_rank(0);
    Communicator comm(&world, 0);
    try {
      body(comm);
    } catch (...) {
      errors[0] = std::current_exception();
    }
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::exception_ptr& err : errors) {
    if (err != nullptr) {
      std::rethrow_exception(err);
    }
  }
}

}  // namespace smpi
