#include "smpi/runtime.h"

#include <exception>
#include <thread>
#include <vector>

#include "core/env.h"
#include "obs/events.h"
#include "obs/trace.h"

namespace smpi {

namespace {

void launch_threads(int nranks,
                    const std::function<void(Communicator&)>& body) {
  World world(make_thread_transport(nranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));

  // Rank 0 runs on the calling thread so single-rank runs need no thread
  // creation and debuggers see the "main" rank on the main stack.
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks - 1));
  for (int r = 1; r < nranks; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      jitfd::obs::set_thread_rank(r);
      jitfd::obs::events::set_thread_rank(r);
      Communicator comm(&world, r);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  {
    jitfd::obs::set_thread_rank(0);
    jitfd::obs::events::set_thread_rank(0);
    Communicator comm(&world, 0);
    try {
      body(comm);
    } catch (...) {
      errors[0] = std::current_exception();
    }
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::exception_ptr& err : errors) {
    if (err != nullptr) {
      std::rethrow_exception(err);
    }
  }
}

}  // namespace

void launch(const LaunchOptions& opts,
            const std::function<void(Communicator&)>& body) {
  const TransportKind kind =
      opts.transport.has_value() ? *opts.transport : default_transport();
  switch (kind) {
    case TransportKind::Threads:
      launch_threads(opts.nranks, body);
      return;
    case TransportKind::ProcessShm: {
      const std::size_t ring_kb =
          opts.shm_ring_kb != 0
              ? opts.shm_ring_kb
              : static_cast<std::size_t>(
                    jitfd::env::get_int("JITFD_SHM_RING_KB", 256));
      launch_process_shm(opts.nranks, ring_kb * 1024, body);
      return;
    }
  }
}

void run(int nranks, const std::function<void(Communicator&)>& body) {
  launch(LaunchOptions{.nranks = nranks}, body);
}

}  // namespace smpi
