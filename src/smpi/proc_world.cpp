#include "smpi/proc_world.h"

#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <new>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "smpi/comm.h"
#include "smpi/shm_ring.h"

namespace smpi {

namespace {

// ---------------------------------------------------------------------
// Shared segment layout: [ SegmentHeader | nranks*nranks ring blocks ].
// Created MAP_SHARED | MAP_ANONYMOUS before fork, so every rank process
// inherits the mapping at the same address and no name/cleanup handling
// is needed — the segment dies with the last process.
// ---------------------------------------------------------------------

constexpr std::size_t align_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}

struct SegmentHeader {
  int nranks = 0;
  std::size_t ring_capacity = 0;  // payload bytes per ring
  std::size_t ring_stride = 0;    // bytes per ring block (aligned)
  std::size_t header_bytes = 0;   // offset of ring 0
  alignas(64) std::atomic<std::uint64_t> messages{0};
  alignas(64) TransportCounters counters{};
  // Any-rank abort flag: set by the launcher when the launch is doomed
  // (rank 0 failed, or a child error left peers blocked). Children
  // observe it inside communication waits and unwind via LaunchAborted.
  alignas(64) std::atomic<std::uint32_t> fatal{0};
};

/// Per-message frame on a ring; payload bytes follow immediately.
struct MsgHeader {
  std::uint64_t bytes = 0;
  std::int32_t tag = 0;
  std::int32_t channel = 0;
};

/// Internal unwind used when the launcher aborts a doomed launch; it is
/// reported over the control channel as collateral ('A'), never as the
/// launch's error, so first-by-rank-order error reporting is not
/// distorted by ranks that were merely dragged down.
struct LaunchAborted {};

// ---------------------------------------------------------------------
// Control-channel frames (one SOCK_STREAM socketpair per child):
//   child -> parent: 'H' ready, 'B' barrier enter, 'X' clean exit,
//                    'A' aborted (collateral), 'E' + u32 len + what().
//   parent -> child: 'R' barrier release.
// ---------------------------------------------------------------------

bool write_exact(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const ssize_t r = ::read(fd, p, n);
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (r == 0) {
      return false;  // EOF
    }
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_frame(int fd, char frame) { return write_exact(fd, &frame, 1); }

void write_error_frame(int fd, const std::string& what) {
  char frame = 'E';
  const std::uint32_t len = static_cast<std::uint32_t>(what.size());
  write_exact(fd, &frame, 1);
  write_exact(fd, &len, sizeof(len));
  write_exact(fd, what.data(), len);
}

/// One byte, or 0 on EOF/error.
char read_frame(int fd) {
  char frame = 0;
  return read_exact(fd, &frame, 1) ? frame : 0;
}

std::string read_error_payload(int fd) {
  std::uint32_t len = 0;
  if (!read_exact(fd, &len, sizeof(len)) || len > (1U << 20)) {
    return "rank process error (message lost)";
  }
  std::string msg(len, '\0');
  if (len > 0 && !read_exact(fd, msg.data(), len)) {
    return "rank process error (message lost)";
  }
  return msg;
}

/// Launcher-side bookkeeping for one child rank process.
struct ChildState {
  int rank = 0;
  pid_t pid = -1;
  int fd = -1;
  bool finished = false;  // terminal frame / EOF seen, or killed
  bool aborted = false;   // collateral ('A' or killed after failure)
  bool has_error = false;
  std::string error;
};

// ---------------------------------------------------------------------
// The transport endpoint. One instance per rank *process*: the launcher
// holds rank 0's (with the children table for barrier duty), each child
// holds its own (with its control fd). A rank's endpoint is only ever
// touched from that rank's thread, so no locks are needed beyond the
// ring atomics and each OpState's own completion mutex.
// ---------------------------------------------------------------------

class ProcTransport final : public Transport, public OpState::Progressor {
 public:
  ProcTransport(SegmentHeader* seg, std::byte* base, int me,
                std::vector<ChildState>* children, int ctl_fd)
      : seg_(seg),
        base_(base),
        me_(me),
        children_(children),
        ctl_fd_(ctl_fd),
        incoming_(static_cast<std::size_t>(seg->nranks)) {}

  TransportKind kind() const override { return TransportKind::ProcessShm; }
  int size() const override { return seg_->nranks; }

  void send(int from, int dest, int tag, Channel channel, const void* buf,
            std::size_t bytes) override {
    assert(from == me_ && "smpi: send from a foreign rank");
    seg_->messages.fetch_add(1, std::memory_order_relaxed);
    if (dest == me_) {
      deliver_local(tag, channel, buf, bytes);
      return;
    }
    MsgHeader hdr;
    hdr.bytes = bytes;
    hdr.tag = tag;
    hdr.channel = static_cast<std::int32_t>(channel);
    ShmRing* r = ring(me_, dest);
    write_stream(r, &hdr, sizeof(hdr));
    write_stream(r, buf, bytes);
  }

  std::shared_ptr<OpState> post_recv(int me, void* buf, std::size_t capacity,
                                     int source, int tag,
                                     Channel channel) override {
    assert(me == me_ && "smpi: receive posted for a foreign rank");
    (void)me;
    auto op = std::make_shared<OpState>();
    op->recv_buf = buf;
    op->recv_capacity = capacity;
    op->want_source = source;
    op->want_tag = tag;
    op->channel = channel;
    op->progressor = this;
    // Earliest compatible unexpected message first (non-overtaking), as
    // in Mailbox::post_recv.
    const auto it = std::find_if(
        unexpected_.begin(), unexpected_.end(), [&](const Message& m) {
          return matches(*op, m.source, m.tag, m.channel);
        });
    if (it != unexpected_.end()) {
      Message msg = std::move(*it);
      unexpected_.erase(it);
      fulfil(*op, msg.source, msg.tag, msg.payload.data.get(),
             msg.payload.size);
      seg_->counters.payload_copies.fetch_add(1, std::memory_order_relaxed);
      pool_.release(std::move(msg.payload));
      return op;
    }
    posted_.push_back(op);
    return op;
  }

  void barrier(int rank) override {
    if (size() == 1) {
      return;
    }
    if (rank == 0) {
      parent_barrier();
    } else {
      child_barrier();
    }
  }

  std::uint64_t message_count() const override {
    return seg_->messages.load(std::memory_order_relaxed);
  }
  const TransportCounters& counters() const override {
    return seg_->counters;
  }
  BufferPool& pool() override { return pool_; }

  /// Drain every incoming ring as far as possible. Called from OpState
  /// wait/test (Progressor), from send-side ring-full waits, and from
  /// the launcher's frame waits. Child endpoints unwind with
  /// LaunchAborted once the launcher flags the launch as doomed.
  void progress() override {
    if (me_ != 0 &&
        seg_->fatal.load(std::memory_order_relaxed) != 0) {
      throw LaunchAborted{};
    }
    for (int src = 0; src < size(); ++src) {
      if (src != me_) {
        drain(src);
      }
    }
  }

 private:
  /// Reassembly state of the (at most one) partially received message
  /// per source ring.
  struct Incoming {
    bool in_header = true;
    std::size_t have = 0;  // header bytes read so far
    MsgHeader hdr;
    std::shared_ptr<OpState> op;  // direct target (matched at header)
    PoolBuffer payload;           // pooled target (unmatched at header)
    std::size_t filled = 0;       // payload bytes consumed so far
  };

  ShmRing* ring(int src, int dst) {
    const std::size_t index =
        static_cast<std::size_t>(src) * static_cast<std::size_t>(size()) +
        static_cast<std::size_t>(dst);
    return ShmRing::attach(base_ + seg_->header_bytes +
                           index * seg_->ring_stride);
  }

  static bool matches(const OpState& op, int source, int tag,
                      Channel channel) {
    if (op.channel != channel) {
      return false;
    }
    if (op.want_source != kAnySource && op.want_source != source) {
      return false;
    }
    if (op.want_tag != kAnyTag && op.want_tag != tag) {
      return false;
    }
    return true;
  }

  static void fulfil(OpState& op, int source, int tag, const void* data,
                     std::size_t bytes) {
    assert(bytes <= op.recv_capacity &&
           "smpi: message longer than posted receive buffer");
    const std::size_t n = std::min(bytes, op.recv_capacity);
    if (n > 0) {
      std::memcpy(op.recv_buf, data, n);
    }
    op.complete(Status{source, tag, n});
  }

  std::shared_ptr<OpState> take_posted(int source, int tag, Channel channel) {
    const auto it = std::find_if(posted_.begin(), posted_.end(),
                                 [&](const std::shared_ptr<OpState>& op) {
                                   return matches(*op, source, tag, channel);
                                 });
    if (it == posted_.end()) {
      return nullptr;
    }
    auto op = *it;
    posted_.erase(it);
    return op;
  }

  void count_rendezvous(int source, std::size_t bytes) {
    seg_->counters.rendezvous.fetch_add(1, std::memory_order_relaxed);
    seg_->counters.payload_copies.fetch_add(1, std::memory_order_relaxed);
    seg_->counters.bytes_delivered.fetch_add(bytes,
                                             std::memory_order_relaxed);
    jitfd::obs::instant("msg.rendezvous", jitfd::obs::Cat::Msg,
                        static_cast<std::int64_t>(bytes), source);
    static jitfd::obs::metrics::Counter& rendezvous =
        jitfd::obs::metrics::counter("smpi.rendezvous_messages");
    rendezvous.add(1);
  }

  void count_queued(int source, std::size_t bytes) {
    seg_->counters.queued.fetch_add(1, std::memory_order_relaxed);
    seg_->counters.payload_copies.fetch_add(1, std::memory_order_relaxed);
    seg_->counters.bytes_delivered.fetch_add(bytes,
                                             std::memory_order_relaxed);
    jitfd::obs::instant("msg.queued", jitfd::obs::Cat::Msg,
                        static_cast<std::int64_t>(bytes), source);
    static jitfd::obs::metrics::Counter& queued =
        jitfd::obs::metrics::counter("smpi.queued_messages");
    queued.add(1);
  }

  /// Self-send: Mailbox::deliver semantics without a ring round-trip.
  void deliver_local(int tag, Channel channel, const void* data,
                     std::size_t bytes) {
    if (auto op = take_posted(me_, tag, channel)) {
      fulfil(*op, me_, tag, data, bytes);
      count_rendezvous(me_, bytes);
      return;
    }
    Message msg;
    msg.source = me_;
    msg.tag = tag;
    msg.channel = channel;
    msg.payload = pool_.acquire(bytes);
    if (bytes > 0) {
      std::memcpy(msg.payload.data.get(), data, bytes);
    }
    unexpected_.push_back(std::move(msg));
    count_queued(me_, bytes);
  }

  /// Stream `bytes` into `r`, draining our own endpoint whenever the
  /// ring is full — the receiver may be blocked streaming to *us*, so
  /// mutual progress is what makes buffered-send semantics deadlock-free
  /// for messages larger than the ring.
  void write_stream(ShmRing* r, const void* data, std::size_t bytes) {
    const std::byte* p = static_cast<const std::byte*>(data);
    std::size_t remaining = bytes;
    int idle = 0;
    while (remaining > 0) {
      const std::size_t w = r->try_write(p, remaining);
      p += w;
      remaining -= w;
      if (remaining == 0) {
        break;
      }
      if (w == 0) {
        progress();
        ++idle;
        if (idle > 4096) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      } else {
        idle = 0;
      }
    }
  }

  void drain(int src) {
    ShmRing* r = ring(src, me_);
    Incoming& st = incoming_[static_cast<std::size_t>(src)];
    for (;;) {
      if (st.in_header) {
        std::byte* hb = reinterpret_cast<std::byte*>(&st.hdr);
        st.have += r->try_read(hb + st.have, sizeof(MsgHeader) - st.have);
        if (st.have < sizeof(MsgHeader)) {
          return;
        }
        // Header complete: pick the target now so a pre-posted receive
        // gets its payload streamed ring -> user buffer directly (the
        // single-copy rendezvous analogue).
        st.op = take_posted(src, st.hdr.tag,
                            static_cast<Channel>(st.hdr.channel));
        if (st.op == nullptr) {
          st.payload = pool_.acquire(static_cast<std::size_t>(st.hdr.bytes));
        }
        st.filled = 0;
        st.in_header = false;
      }
      const std::size_t total = static_cast<std::size_t>(st.hdr.bytes);
      while (st.filled < total) {
        std::size_t got = 0;
        if (st.op != nullptr) {
          OpState& op = *st.op;
          if (st.filled < op.recv_capacity) {
            const std::size_t want =
                std::min(total, op.recv_capacity) - st.filled;
            got = r->try_read(
                static_cast<std::byte*>(op.recv_buf) + st.filled, want);
          } else {
            // Oversized message (asserted against in fulfil's debug
            // contract): swallow the excess.
            std::byte scratch[512];
            got = r->try_read(scratch,
                              std::min(total - st.filled, sizeof(scratch)));
          }
        } else {
          got = r->try_read(st.payload.data.get() + st.filled,
                            total - st.filled);
        }
        if (got == 0) {
          return;  // ring empty mid-payload; resume on a later drain
        }
        st.filled += got;
      }
      finish(st, src);
      st = Incoming{};
    }
  }

  void finish(Incoming& st, int src) {
    const std::size_t bytes = static_cast<std::size_t>(st.hdr.bytes);
    const auto channel = static_cast<Channel>(st.hdr.channel);
    if (st.op != nullptr) {
      assert(bytes <= st.op->recv_capacity &&
             "smpi: message longer than posted receive buffer");
      const std::size_t n = std::min(bytes, st.op->recv_capacity);
      st.op->complete(Status{src, st.hdr.tag, n});
      count_rendezvous(src, bytes);
      return;
    }
    count_queued(src, bytes);
    // A receive may have been posted while the payload was in flight;
    // safe to match now — were an earlier compatible message pending,
    // that post would have matched it already.
    if (auto op = take_posted(src, st.hdr.tag, channel)) {
      fulfil(*op, src, st.hdr.tag, st.payload.data.get(), bytes);
      seg_->counters.payload_copies.fetch_add(1, std::memory_order_relaxed);
      pool_.release(std::move(st.payload));
      return;
    }
    Message msg;
    msg.source = src;
    msg.tag = st.hdr.tag;
    msg.channel = channel;
    msg.payload = std::move(st.payload);
    unexpected_.push_back(std::move(msg));
  }

  // --- Barrier over the control channel --------------------------------

  void parent_barrier() {
    for (ChildState& c : *children_) {
      if (c.finished) {
        throw RankError(c.rank, c.has_error
                                    ? c.error
                                    : "exited before a barrier rank 0 "
                                      "entered");
      }
      const char f = wait_frame(c.fd);
      if (f == 'B') {
        continue;
      }
      record_terminal(c, f);
      throw RankError(c.rank, c.has_error
                                  ? c.error
                                  : "exited before a barrier rank 0 "
                                    "entered");
    }
    for (ChildState& c : *children_) {
      write_frame(c.fd, 'R');
    }
  }

  void child_barrier() {
    if (!write_frame(ctl_fd_, 'B')) {
      throw std::runtime_error("smpi: launcher process exited");
    }
    for (;;) {
      struct pollfd pfd = {ctl_fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 20);
      if (rc > 0) {
        const char f = read_frame(ctl_fd_);
        if (f == 'R') {
          return;
        }
        throw std::runtime_error("smpi: launcher process exited");
      }
      // Keep draining while blocked: peers may be streaming sends that
      // must complete before they can reach this barrier.
      progress();
    }
  }

  /// Parent-side frame wait that keeps rank 0's endpoint progressing
  /// (children may be blocked streaming large sends to rank 0).
  char wait_frame(int fd) {
    for (;;) {
      struct pollfd pfd = {fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 20);
      if (rc > 0) {
        return read_frame(fd);
      }
      progress();
    }
  }

 public:
  /// Record a child's terminal frame in its ChildState ('X'/'A'/'E'/EOF;
  /// 'B' marks SPMD divergence: a barrier rank 0 will never join).
  void record_terminal(ChildState& c, char frame) {
    switch (frame) {
      case 'X':
        c.finished = true;
        break;
      case 'A':
        c.finished = true;
        c.aborted = true;
        break;
      case 'E':
        c.finished = true;
        c.has_error = true;
        c.error = read_error_payload(c.fd);
        break;
      case 'B':
        c.has_error = true;
        c.error = "entered a barrier after rank 0 finished";
        seg_->fatal.store(1, std::memory_order_relaxed);
        break;
      default:  // EOF: died without reporting (signal, _exit, abort)
        c.finished = true;
        if (!c.has_error) {
          c.has_error = true;
          c.error = "rank process terminated unexpectedly";
        }
        break;
    }
  }

 private:
  SegmentHeader* seg_;
  std::byte* base_;
  int me_;
  std::vector<ChildState>* children_;  // parent endpoint only
  int ctl_fd_;                         // child endpoint only
  BufferPool pool_;
  std::deque<Message> unexpected_;
  std::deque<std::shared_ptr<OpState>> posted_;
  std::vector<Incoming> incoming_;
};

// ---------------------------------------------------------------------
// Child lifecycle.
// ---------------------------------------------------------------------

std::string trace_file(const std::string& dir, int rank) {
  return dir + "/rank_" + std::to_string(rank) + ".trace";
}

[[noreturn]] void run_child(SegmentHeader* seg, std::byte* base, int rank,
                            int fd, const std::string& trace_dir,
                            const std::function<void(Communicator&)>& body) {
  ::signal(SIGPIPE, SIG_IGN);
#ifdef _OPENMP
  // The forked child inherits libgomp's thread-pool bookkeeping but not
  // the pool threads themselves; 1-thread teams run inline on this
  // thread and never touch the stale pool.
  omp_set_num_threads(1);
#endif
  jitfd::obs::set_thread_rank(rank);
  jitfd::obs::events::set_thread_rank(rank);
  // Drop events inherited from the parent's buffers so the merged trace
  // holds each record exactly once.
  jitfd::obs::reset();
  jitfd::obs::events::reset();

  int exit_code = 0;
  const auto save_trace = [&] {
    try {
      jitfd::obs::save_file(trace_file(trace_dir, rank));
    } catch (...) {
      // Trace loss is not worth failing the rank over.
    }
  };
  try {
    write_frame(fd, 'H');
    World world(std::make_unique<ProcTransport>(seg, base, rank, nullptr, fd));
    Communicator comm(&world, rank);
    body(comm);
    save_trace();
    write_frame(fd, 'X');
  } catch (const LaunchAborted&) {
    save_trace();
    write_frame(fd, 'A');
    exit_code = 1;
  } catch (const std::exception& ex) {
    save_trace();
    write_error_frame(fd, ex.what());
    exit_code = 1;
  } catch (...) {
    save_trace();
    write_error_frame(fd, "unknown exception");
    exit_code = 1;
  }
  // _exit, not exit: atexit handlers and static destructors belong to
  // the launching process; running them n times corrupts shared state
  // (JIT cache scratch dirs, flight-recorder bundles).
  std::fflush(stdout);
  std::fflush(stderr);
  ::_exit(exit_code);
}

// ---------------------------------------------------------------------
// Launcher.
// ---------------------------------------------------------------------

/// Collect terminal frames from every child. Children blocked on a dead
/// peer are flagged via the segment's fatal bit (they unwind and report
/// 'A'), and SIGKILLed only as a last resort.
void wait_children(std::vector<ChildState>& children, ProcTransport& t,
                   SegmentHeader* seg, bool rank0_failed) {
  if (rank0_failed) {
    seg->fatal.store(1, std::memory_order_relaxed);
  }
  int stall_polls = 0;
  for (;;) {
    std::vector<struct pollfd> pfds;
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (!children[i].finished) {
        pfds.push_back({children[i].fd, POLLIN, 0});
        idx.push_back(i);
      }
    }
    if (pfds.empty()) {
      break;
    }
    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 50);
    t.progress();  // rank 0 endpoint never throws LaunchAborted
    if (rc <= 0) {
      ++stall_polls;
      const bool any_error =
          rank0_failed ||
          std::any_of(children.begin(), children.end(),
                      [](const ChildState& c) { return c.has_error; });
      if (any_error && stall_polls >= 40) {  // ~2 s of silence
        if (seg->fatal.load(std::memory_order_relaxed) == 0) {
          // First escalation: ask blocked ranks to unwind themselves.
          seg->fatal.store(1, std::memory_order_relaxed);
          stall_polls = 0;
        } else {
          // Second escalation: they are not even reaching a progress
          // point; kill what remains.
          for (ChildState& c : children) {
            if (!c.finished) {
              ::kill(c.pid, SIGKILL);
              c.finished = true;
              c.aborted = true;
            }
          }
        }
      }
      continue;
    }
    stall_polls = 0;
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      ChildState& c = children[idx[k]];
      t.record_terminal(c, read_frame(c.fd));
    }
  }
  for (ChildState& c : children) {
    int status = 0;
    ::waitpid(c.pid, &status, 0);
  }
}

}  // namespace

void launch_process_shm(int nranks, std::size_t ring_bytes,
                        const std::function<void(Communicator&)>& body) {
  if (nranks < 1) {
    throw std::invalid_argument("smpi: need at least one rank");
  }
  const std::size_t ring_cap = ShmRing::round_capacity(ring_bytes);
  const std::size_t ring_stride =
      align_up(ShmRing::bytes_needed(ring_cap), 64);
  const std::size_t header_bytes = align_up(sizeof(SegmentHeader), 64);
  const std::size_t total =
      header_bytes + static_cast<std::size_t>(nranks) *
                         static_cast<std::size_t>(nranks) * ring_stride;

  void* mem = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    throw std::runtime_error(std::string("smpi: mmap of ") +
                             std::to_string(total) +
                             "-byte shared segment failed: " +
                             std::strerror(errno));
  }
  auto* base = static_cast<std::byte*>(mem);
  auto* seg = new (mem) SegmentHeader{};
  seg->nranks = nranks;
  seg->ring_capacity = ring_cap;
  seg->ring_stride = ring_stride;
  seg->header_bytes = header_bytes;
  for (int s = 0; s < nranks; ++s) {
    for (int d = 0; d < nranks; ++d) {
      const std::size_t index = static_cast<std::size_t>(s) *
                                    static_cast<std::size_t>(nranks) +
                                static_cast<std::size_t>(d);
      ShmRing::init(base + header_bytes + index * ring_stride, ring_cap);
    }
  }

  // Temp dir for child trace files, created before fork so every rank
  // agrees on it.
  std::string trace_dir;
  {
    const char* tmp = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(tmp != nullptr ? tmp : "/tmp") + "/jitfd_launch_XXXXXX";
    if (::mkdtemp(tmpl.data()) != nullptr) {
      trace_dir = tmpl;
    }
  }

  // Writing 'R' to a crashed child must surface as a frame-level EOF,
  // not kill the launcher.
  using SigHandler = void (*)(int);
  const SigHandler old_pipe = ::signal(SIGPIPE, SIG_IGN);

  std::vector<ChildState> children(
      static_cast<std::size_t>(nranks > 1 ? nranks - 1 : 0));
  std::vector<int> child_fds(children.size(), -1);
  const auto cleanup = [&](bool kill_children) {
    for (ChildState& c : children) {
      if (kill_children && c.pid > 0 && !c.finished) {
        ::kill(c.pid, SIGKILL);
      }
      if (c.fd >= 0) {
        ::close(c.fd);
      }
    }
    for (const int fd : child_fds) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
    if (kill_children) {
      for (ChildState& c : children) {
        if (c.pid > 0) {
          int status = 0;
          ::waitpid(c.pid, &status, 0);
        }
      }
    }
    ::signal(SIGPIPE, old_pipe);
    ::munmap(mem, total);
    if (!trace_dir.empty()) {
      for (int r = 1; r < nranks; ++r) {
        ::unlink(trace_file(trace_dir, r).c_str());
      }
      ::rmdir(trace_dir.c_str());
    }
  };

  try {
    for (std::size_t i = 0; i < children.size(); ++i) {
      int sv[2] = {-1, -1};
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        throw std::runtime_error(
            std::string("smpi: socketpair failed: ") + std::strerror(errno));
      }
      children[i].rank = static_cast<int>(i) + 1;
      children[i].fd = sv[0];
      child_fds[i] = sv[1];
    }
    // Flush before forking: with stdout/stderr fully buffered (piped
    // output), children would inherit the parent's pending bytes and
    // re-emit them from their own pre-_exit flush.
    std::fflush(stdout);
    std::fflush(stderr);
    for (std::size_t i = 0; i < children.size(); ++i) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        throw std::runtime_error(std::string("smpi: fork failed: ") +
                                 std::strerror(errno));
      }
      if (pid == 0) {
        // Child: keep only our control fd.
        for (std::size_t j = 0; j < children.size(); ++j) {
          ::close(children[j].fd);
          if (j != i && child_fds[j] >= 0) {
            ::close(child_fds[j]);
          }
        }
        run_child(seg, base, children[i].rank, child_fds[i], trace_dir,
                  body);
      }
      children[i].pid = pid;
    }
    for (int& fd : child_fds) {
      ::close(fd);
      fd = -1;
    }
  } catch (...) {
    cleanup(/*kill_children=*/true);
    throw;
  }

  ProcTransport* transport =
      new ProcTransport(seg, base, 0, &children, -1);
  World world{std::unique_ptr<Transport>(transport)};

  // Startup handshake: every child reports 'H' before rank 0's body
  // runs, so a rank that dies during setup fails the launch immediately.
  for (ChildState& c : children) {
    const char f = read_frame(c.fd);
    if (f != 'H') {
      const int rank = c.rank;
      cleanup(/*kill_children=*/true);
      throw RankError(rank, "rank process failed to start");
    }
  }

  jitfd::obs::set_thread_rank(0);
  jitfd::obs::events::set_thread_rank(0);
  std::exception_ptr rank0_error;
  {
    Communicator comm(&world, 0);
    try {
      body(comm);
    } catch (...) {
      rank0_error = std::current_exception();
    }
  }

  wait_children(children, *transport, seg, rank0_error != nullptr);

  // Merge child traces (epoch-aligned) so TraceHandle snapshots taken
  // after launch() see all ranks, as they do under the threads
  // transport.
  if (!trace_dir.empty()) {
    for (int r = 1; r < nranks; ++r) {
      jitfd::obs::import_file(trace_file(trace_dir, r));
    }
  }

  // First error by rank order. Rank 0's exception keeps its type — with
  // one exception: a RankError rank 0 caught from a barrier is an echo
  // of a child failure already recorded below, so the child's own entry
  // (lower-rank-first among children) is authoritative.
  int rank0_echo_of = -1;
  if (rank0_error != nullptr) {
    try {
      std::rethrow_exception(rank0_error);
    } catch (const RankError& re) {
      if (re.rank() >= 1 && re.rank() <= static_cast<int>(children.size()) &&
          children[static_cast<std::size_t>(re.rank() - 1)].has_error) {
        rank0_echo_of = re.rank();
      }
    } catch (...) {
    }
  }
  cleanup(/*kill_children=*/false);
  if (rank0_error != nullptr && rank0_echo_of < 0) {
    std::rethrow_exception(rank0_error);
  }
  for (const ChildState& c : children) {
    if (c.has_error) {
      throw RankError(c.rank, c.error);
    }
  }
  if (rank0_error != nullptr) {
    std::rethrow_exception(rank0_error);
  }
}

}  // namespace smpi
