#include "smpi/mailbox.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace smpi {

bool Mailbox::matches(const OpState& op, int source, int tag,
                      Channel channel) {
  if (op.channel != channel) {
    return false;
  }
  if (op.want_source != kAnySource && op.want_source != source) {
    return false;
  }
  if (op.want_tag != kAnyTag && op.want_tag != tag) {
    return false;
  }
  return true;
}

namespace {

// Copy `bytes` from `data` into the receive buffer and complete the op.
// Receiving into a smaller buffer than the message is an error in MPI; we
// assert in debug builds and truncate in release builds.
void fulfil(OpState& op, int source, int tag, const void* data,
            std::size_t bytes) {
  assert(bytes <= op.recv_capacity &&
         "smpi: message longer than posted receive buffer");
  const std::size_t n = std::min(bytes, op.recv_capacity);
  if (n > 0) {
    std::memcpy(op.recv_buf, data, n);
  }
  op.complete(Status{source, tag, n});
}

}  // namespace

void Mailbox::deliver(int source, int tag, Channel channel, const void* data,
                      std::size_t bytes) {
  std::shared_ptr<OpState> match;
  {
    const std::lock_guard<std::mutex> lock(mtx_);
    const auto it = std::find_if(posted_.begin(), posted_.end(),
                                 [&](const std::shared_ptr<OpState>& op) {
                                   return matches(*op, source, tag, channel);
                                 });
    if (it == posted_.end()) {
      // Unexpected: materialize a pooled payload. The copy happens under
      // the mailbox lock so messages of one (source, tag) pair enqueue in
      // send order (non-overtaking) and can't race a concurrent
      // post_recv into a missed match.
      Message msg;
      msg.source = source;
      msg.tag = tag;
      msg.channel = channel;
      msg.payload = pool_->acquire(bytes);
      if (bytes > 0) {
        std::memcpy(msg.payload.data.get(), data, bytes);
      }
      unexpected_.push_back(std::move(msg));
      counters_->queued.fetch_add(1, std::memory_order_relaxed);
      counters_->payload_copies.fetch_add(1, std::memory_order_relaxed);
      counters_->bytes_delivered.fetch_add(bytes, std::memory_order_relaxed);
      jitfd::obs::instant("msg.queued", jitfd::obs::Cat::Msg,
                          static_cast<std::int64_t>(bytes), source);
      static jitfd::obs::metrics::Counter& queued =
          jitfd::obs::metrics::counter("smpi.queued_messages");
      queued.add(1);
      return;
    }
    match = *it;
    posted_.erase(it);
  }
  // Rendezvous: the one and only payload copy, outside the mailbox lock.
  // The op was removed from posted_ under the lock, so this thread owns
  // its completion exclusively.
  fulfil(*match, source, tag, data, bytes);
  counters_->rendezvous.fetch_add(1, std::memory_order_relaxed);
  counters_->payload_copies.fetch_add(1, std::memory_order_relaxed);
  counters_->bytes_delivered.fetch_add(bytes, std::memory_order_relaxed);
  jitfd::obs::instant("msg.rendezvous", jitfd::obs::Cat::Msg,
                      static_cast<std::int64_t>(bytes), source);
  static jitfd::obs::metrics::Counter& rendezvous =
      jitfd::obs::metrics::counter("smpi.rendezvous_messages");
  rendezvous.add(1);
}

void Mailbox::post_recv(const std::shared_ptr<OpState>& op) {
  Message msg;
  {
    const std::lock_guard<std::mutex> lock(mtx_);
    const auto it = std::find_if(unexpected_.begin(), unexpected_.end(),
                                 [&](const Message& m) {
                                   return matches(*op, m.source, m.tag,
                                                  m.channel);
                                 });
    if (it == unexpected_.end()) {
      posted_.push_back(op);
      return;
    }
    msg = std::move(*it);
    unexpected_.erase(it);
  }
  // Second (and last) copy of an unexpected message, then recycle its
  // payload.
  fulfil(*op, msg.source, msg.tag, msg.payload.data.get(), msg.payload.size);
  counters_->payload_copies.fetch_add(1, std::memory_order_relaxed);
  pool_->release(std::move(msg.payload));
}

std::size_t Mailbox::pending_messages() const {
  const std::lock_guard<std::mutex> lock(mtx_);
  return unexpected_.size();
}

}  // namespace smpi
