#include "smpi/mailbox.h"

#include <algorithm>
#include <cassert>

namespace smpi {

bool Mailbox::matches(const OpState& op, const Message& msg) {
  if (op.channel != msg.channel) {
    return false;
  }
  if (op.want_source != kAnySource && op.want_source != msg.source) {
    return false;
  }
  if (op.want_tag != kAnyTag && op.want_tag != msg.tag) {
    return false;
  }
  return true;
}

namespace {

// Copy a matched payload into the receive buffer and complete the op.
// Receiving into a smaller buffer than the message is an error in MPI; we
// assert in debug builds and truncate in release builds.
void fulfil(OpState& op, const Message& msg) {
  assert(msg.payload.size() <= op.recv_capacity &&
         "smpi: message longer than posted receive buffer");
  const std::size_t n = std::min(msg.payload.size(), op.recv_capacity);
  if (n > 0) {
    std::memcpy(op.recv_buf, msg.payload.data(), n);
  }
  op.complete(Status{msg.source, msg.tag, n});
}

}  // namespace

void Mailbox::deliver(Message&& msg) {
  std::shared_ptr<OpState> match;
  {
    const std::lock_guard<std::mutex> lock(mtx_);
    const auto it = std::find_if(
        posted_.begin(), posted_.end(),
        [&](const std::shared_ptr<OpState>& op) { return matches(*op, msg); });
    if (it == posted_.end()) {
      unexpected_.push_back(std::move(msg));
      return;
    }
    match = *it;
    posted_.erase(it);
  }
  fulfil(*match, msg);
}

void Mailbox::post_recv(const std::shared_ptr<OpState>& op) {
  Message msg;
  {
    const std::lock_guard<std::mutex> lock(mtx_);
    const auto it = std::find_if(
        unexpected_.begin(), unexpected_.end(),
        [&](const Message& m) { return matches(*op, m); });
    if (it == unexpected_.end()) {
      posted_.push_back(op);
      return;
    }
    msg = std::move(*it);
    unexpected_.erase(it);
  }
  fulfil(*op, msg);
}

std::size_t Mailbox::pending_messages() const {
  const std::lock_guard<std::mutex> lock(mtx_);
  return unexpected_.size();
}

}  // namespace smpi
