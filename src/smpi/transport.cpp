#include "smpi/transport.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "core/env.h"

namespace smpi {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::Threads:
      return "threads";
    case TransportKind::ProcessShm:
      return "process_shm";
  }
  return "?";
}

TransportKind transport_from_string(const std::string& name) {
  if (name == "threads") {
    return TransportKind::Threads;
  }
  if (name == "process_shm") {
    return TransportKind::ProcessShm;
  }
  throw std::invalid_argument("unknown transport '" + name +
                              "': valid values are threads|process_shm");
}

TransportKind default_transport() {
  return transport_from_string(jitfd::env::get_enum(
      "JITFD_TRANSPORT", "threads", {"threads", "process_shm"}));
}

namespace {

/// The original SMPI substrate: one mailbox per rank, single-copy
/// rendezvous delivery by sender threads, sense-reversing barrier.
class ThreadTransport final : public Transport {
 public:
  explicit ThreadTransport(int nranks) {
    if (nranks < 1) {
      throw std::invalid_argument("smpi: need at least one rank");
    }
    mailboxes_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      mailboxes_.push_back(std::make_unique<Mailbox>(&pool_, &counters_));
    }
  }

  TransportKind kind() const override { return TransportKind::Threads; }
  int size() const override { return static_cast<int>(mailboxes_.size()); }

  void send(int from, int dest, int tag, Channel channel, const void* buf,
            std::size_t bytes) override {
    messages_.fetch_add(1, std::memory_order_relaxed);
    mailboxes_.at(static_cast<std::size_t>(dest))
        ->deliver(from, tag, channel, buf, bytes);
  }

  std::shared_ptr<OpState> post_recv(int me, void* buf, std::size_t capacity,
                                     int source, int tag,
                                     Channel channel) override {
    auto op = std::make_shared<OpState>();
    op->recv_buf = buf;
    op->recv_capacity = capacity;
    op->want_source = source;
    op->want_tag = tag;
    op->channel = channel;
    mailboxes_.at(static_cast<std::size_t>(me))->post_recv(op);
    return op;
  }

  void barrier(int /*rank*/) override {
    std::unique_lock<std::mutex> lock(barrier_mtx_);
    const std::uint64_t my_generation = barrier_generation_;
    if (++barrier_waiting_ == size()) {
      barrier_waiting_ = 0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lock,
                     [&] { return barrier_generation_ != my_generation; });
  }

  std::uint64_t message_count() const override { return messages_.load(); }
  const TransportCounters& counters() const override { return counters_; }
  BufferPool& pool() override { return pool_; }

 private:
  BufferPool pool_;
  TransportCounters counters_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::mutex barrier_mtx_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::atomic<std::uint64_t> messages_{0};
};

}  // namespace

std::unique_ptr<Transport> make_thread_transport(int nranks) {
  return std::make_unique<ThreadTransport>(nranks);
}

}  // namespace smpi
