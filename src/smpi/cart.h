// Cartesian process topology (mirrors MPI_Cart_* plus the generalized
// neighbour query the diagonal/full halo patterns need).
#pragma once

#include <array>
#include <vector>

#include "smpi/comm.h"

namespace smpi {

/// Balanced factorization of `nranks` over `ndims` dimensions, mirroring
/// MPI_Dims_create: dimensions are as close to each other as possible and
/// sorted in non-increasing order. Entries of `dims` that are nonzero on
/// input are kept fixed.
std::vector<int> dims_create(int nranks, int ndims, std::vector<int> dims = {});

/// A communicator with an attached Cartesian topology. Rank order is
/// row-major in coordinates (last dimension varies fastest), matching the
/// default MPI_Cart_create layout.
class CartComm {
 public:
  /// `dims` must multiply to comm.size(). Non-periodic in every dimension
  /// (finite-difference domains have physical boundaries).
  CartComm(Communicator comm, std::vector<int> dims);

  const Communicator& comm() const { return comm_; }
  int rank() const { return comm_.rank(); }
  int size() const { return comm_.size(); }
  int ndims() const { return static_cast<int>(dims_.size()); }
  const std::vector<int>& dims() const { return dims_; }

  /// Coordinates of `rank` in the topology.
  std::vector<int> coords(int rank) const;
  /// Coordinates of this rank.
  const std::vector<int>& my_coords() const { return my_coords_; }

  /// Rank at `coords`, or kProcNull if any coordinate is out of range.
  int rank_of(const std::vector<int>& coords) const;

  /// MPI_Cart_shift: the (source, dest) pair for displacement `disp` along
  /// dimension `dim`. Out-of-domain neighbours are kProcNull.
  struct Shift {
    int source = kProcNull;
    int dest = kProcNull;
  };
  Shift shift(int dim, int disp) const;

  /// Rank of the neighbour displaced by `offset` (one entry per dimension,
  /// each in {-1, 0, +1} for halo exchanges but any value is accepted);
  /// kProcNull if outside the topology.
  int neighbor(const std::vector<int>& offset) const;

  /// All neighbour offsets with entries in {-1,0,+1}, excluding the zero
  /// offset and offsets whose neighbour is kProcNull. In 3D this yields up
  /// to 26 entries — the diagonal/full pattern's message set.
  std::vector<std::vector<int>> star_neighborhood() const;

  /// Face-only neighbour offsets (exactly one nonzero entry), excluding
  /// kProcNull neighbours — the basic pattern's message set (up to 2*ndims).
  std::vector<std::vector<int>> face_neighborhood() const;

 private:
  Communicator comm_;
  std::vector<int> dims_;
  std::vector<int> my_coords_;
};

}  // namespace smpi
