// The transport seam of the SMPI substrate.
//
// Generated halo-exchange code, the interpreter, collectives and the
// observability stack all speak to a Communicator; a Communicator speaks
// to a Transport. A Transport decides how ranks are *realized*:
//
//   threads      — ranks are threads in one address space; messages move
//                  through per-rank mailboxes with single-copy rendezvous
//                  delivery (the original SMPI substrate).
//   process_shm  — ranks are forked OS processes; messages stream through
//                  per-direction POSIX shared-memory rings, with a
//                  socketpair control channel per rank for the startup
//                  handshake, barriers, and error propagation.
//
// The seam is byte-level point-to-point (tagged send / posted receive
// with MPI matching semantics) plus a barrier; collectives are built on
// top of point-to-point in Communicator and therefore run unchanged on
// every transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "smpi/mailbox.h"
#include "smpi/pool.h"
#include "smpi/types.h"

namespace smpi {

/// How ranks are realized by smpi::launch.
enum class TransportKind {
  Threads,     ///< Rank threads in one address space (classic SMPI).
  ProcessShm,  ///< Forked rank processes over shared-memory rings.
};

const char* to_string(TransportKind kind);

/// Strict parse of "threads" | "process_shm"; anything else is a hard
/// error listing the valid values.
TransportKind transport_from_string(const std::string& name);

/// The process-wide default for launches that do not pin a transport:
/// JITFD_TRANSPORT when set (strictly parsed), otherwise Threads.
TransportKind default_transport();

/// The abstract seam. One Transport instance serves all rank threads of
/// a World (threads), or exactly one rank of it (process_shm: each
/// process constructs its own endpoint over the shared segment). All
/// operations carry the calling rank explicitly so both shapes fit.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportKind kind() const = 0;
  virtual int size() const = 0;

  /// Buffered-semantics tagged send: completes locally once the payload
  /// has left `buf` (never deadlocks on itself; `buf` need only stay
  /// valid for the call). `from` must be the calling rank.
  virtual void send(int from, int dest, int tag, Channel channel,
                    const void* buf, std::size_t bytes) = 0;

  /// Post a receive for rank `me` (the calling rank). Matching follows
  /// MPI semantics: earliest compatible pending message, arrival order
  /// per (source, tag) pair (non-overtaking). Completion is observed
  /// through the returned OpState (wait/test from the posting rank only).
  virtual std::shared_ptr<OpState> post_recv(int me, void* buf,
                                             std::size_t capacity,
                                             int source, int tag,
                                             Channel channel) = 0;

  /// Barrier across all ranks of the world; `rank` is the calling rank.
  virtual void barrier(int rank) = 0;

  /// Total messages delivered world-wide since construction.
  virtual std::uint64_t message_count() const = 0;

  /// World-wide delivery counters (shared memory on process_shm, so all
  /// ranks observe the same totals, as with threads).
  virtual const TransportCounters& counters() const = 0;

  /// The unexpected-payload pool serving the calling rank (process-wide
  /// for threads, per-process for process_shm).
  virtual BufferPool& pool() = 0;
};

/// The threads-as-ranks transport (mailboxes + sense-reversing barrier),
/// extracted from the original World internals.
std::unique_ptr<Transport> make_thread_transport(int nranks);

}  // namespace smpi
