// Single-producer / single-consumer byte ring over shared memory.
//
// The process transport lays one ring per ordered rank pair (src -> dst)
// inside a MAP_SHARED segment created before fork. A ring is a byte
// *stream*, not a datagram queue: messages larger than the ring flow
// through in chunks (the sender drains its own endpoint while waiting for
// space, so cyclic exchanges cannot deadlock). Framing — message headers
// and payload reassembly — is the caller's job (smpi/proc_world.cpp).
//
// Memory layout (placement-constructed in shared memory):
//   [ ShmRing header | capacity bytes of data ]
// `head_` is advanced only by the consumer, `tail_` only by the producer;
// both are monotonically increasing 64-bit positions (index = pos & mask),
// so empty is head==tail and full is tail-head==capacity with no wasted
// slot. Release/acquire pairs order payload bytes against the indices.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace smpi {

class ShmRing {
 public:
  /// Segment bytes needed for a ring of `capacity` payload bytes
  /// (capacity must be a power of two).
  static std::size_t bytes_needed(std::size_t capacity) {
    return sizeof(ShmRing) + capacity;
  }

  /// Round up to the smallest power of two >= n (min 4 KiB).
  static std::size_t round_capacity(std::size_t n);

  /// Placement-construct a ring over `mem` (which must provide
  /// bytes_needed(capacity) bytes in a shared mapping).
  static ShmRing* init(void* mem, std::size_t capacity);

  /// View an already-initialized ring (e.g. after fork; the mapping is
  /// inherited, so this is just a cast).
  static ShmRing* attach(void* mem) { return static_cast<ShmRing*>(mem); }

  /// Producer side: copy up to `bytes` from `src` into the ring; returns
  /// the number actually written (0 when full). Partial writes are normal
  /// — the stream protocol tolerates them.
  std::size_t try_write(const void* src, std::size_t bytes);

  /// Consumer side: copy up to `bytes` from the ring into `dst`; returns
  /// the number actually read (0 when empty).
  std::size_t try_read(void* dst, std::size_t bytes);

  /// Consumer side: bytes currently readable.
  std::size_t readable() const;

  std::size_t capacity() const { return capacity_; }

 private:
  ShmRing(std::size_t capacity) : capacity_(capacity) {}

  std::byte* data() { return reinterpret_cast<std::byte*>(this + 1); }
  const std::byte* data() const {
    return reinterpret_cast<const std::byte*>(this + 1);
  }

  std::size_t capacity_;
  // Separate cache lines: the producer spins on head_ while the consumer
  // writes it, and vice versa.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm rings need address-free lock-free 64-bit atomics");

}  // namespace smpi
