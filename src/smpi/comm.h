// Communicator: the rank-facing API of the SMPI substrate.
//
// A World owns the shared state (one mailbox per rank, barrier); each rank
// thread holds a Communicator that references the World plus its own rank.
// The API mirrors the MPI subset the generated halo-exchange code and the
// distributed-data layer need.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "smpi/mailbox.h"
#include "smpi/types.h"

namespace smpi {

/// Handle to a nonblocking operation. Copyable; wait() and test() may be
/// called from the posting rank only (as in MPI). A default-constructed
/// Request is "null" and trivially complete.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<OpState> state) : state_(std::move(state)) {}

  /// Block until the operation completes; returns its status.
  Status wait();

  /// Nonblocking completion probe.
  bool test() const;

  bool is_null() const { return state_ == nullptr; }

 private:
  std::shared_ptr<OpState> state_;
};

/// Shared, process-wide state behind a set of rank threads.
class World {
 public:
  explicit World(int nranks);

  int size() const { return static_cast<int>(mailboxes_.size()); }
  Mailbox& mailbox(int rank) { return *mailboxes_.at(static_cast<std::size_t>(rank)); }

  /// Sense-reversing barrier across all ranks of the world.
  void barrier();

  /// Total messages delivered since construction (diagnostics / tests).
  std::uint64_t message_count() const { return messages_.load(); }
  void count_message() { messages_.fetch_add(1, std::memory_order_relaxed); }

  /// The shared unexpected-message payload pool (stats / tests).
  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }

  /// Rendezvous-vs-queued delivery counters (stats / tests).
  const TransportCounters& transport() const { return transport_; }

 private:
  BufferPool pool_;
  TransportCounters transport_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::mutex barrier_mtx_;
  std::condition_variable barrier_cv_;
  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::atomic<std::uint64_t> messages_{0};
};

/// Per-rank communicator. Cheap to copy; all copies refer to the same
/// World. Thread affinity: a Communicator must only be used by the thread
/// of the rank it was created for.
class Communicator {
 public:
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size(); }
  World& world() const { return *world_; }

  // --- Point-to-point (byte-level) -------------------------------------

  /// Buffered blocking send: completes locally as soon as the payload has
  /// been copied into the destination mailbox (never deadlocks on itself).
  void send(const void* buf, std::size_t bytes, int dest, int tag) const;

  /// Blocking receive; returns the matched message's status.
  Status recv(void* buf, std::size_t bytes, int source, int tag) const;

  /// Nonblocking send; the returned request is already complete (buffered
  /// semantics) but is provided so call sites read like MPI.
  Request isend(const void* buf, std::size_t bytes, int dest, int tag) const;

  /// Nonblocking receive into `buf` (caller keeps `buf` alive until wait).
  Request irecv(void* buf, std::size_t bytes, int source, int tag) const;

  /// Combined send+recv (used by the basic halo pattern's axis sweeps).
  Status sendrecv(const void* sendbuf, std::size_t send_bytes, int dest,
                  int send_tag, void* recvbuf, std::size_t recv_bytes,
                  int source, int recv_tag) const;

  // --- Typed convenience wrappers ---------------------------------------

  template <typename T>
  void send_n(const T* buf, std::size_t n, int dest, int tag) const {
    send(buf, n * sizeof(T), dest, tag);
  }
  template <typename T>
  Status recv_n(T* buf, std::size_t n, int source, int tag) const {
    return recv(buf, n * sizeof(T), source, tag);
  }

  // --- Collectives -------------------------------------------------------

  void barrier() const { world_->barrier(); }

  /// In-place allreduce over a span of doubles.
  void allreduce(std::span<double> values, ReduceOp op) const;
  /// In-place allreduce over a span of 64-bit integers.
  void allreduce(std::span<std::int64_t> values, ReduceOp op) const;

  /// Broadcast `bytes` from `root` into every rank's `buf`.
  void bcast(void* buf, std::size_t bytes, int root) const;

  /// Gather fixed-size contributions to `root`. On the root, `recv` must
  /// hold size()*bytes; on other ranks it may be empty.
  void gather(const void* sendbuf, std::size_t bytes, void* recvbuf,
              int root) const;

 private:
  template <typename T>
  void allreduce_impl(std::span<T> values, ReduceOp op) const;

  // Tags in the collective channel encode the operation round.
  static constexpr int kCollectiveTag = 0;

  World* world_;
  int rank_;
};

}  // namespace smpi
