// Communicator: the rank-facing API of the SMPI substrate.
//
// A World owns a Transport — the seam that decides whether ranks are
// threads in this address space or forked processes over shared-memory
// rings (smpi/transport.h). Each rank holds a Communicator that
// references the World plus its own rank. The API mirrors the MPI subset
// the generated halo-exchange code and the distributed-data layer need,
// and is transport-agnostic: collectives are built on tagged
// point-to-point, so they run unchanged on every transport.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "smpi/mailbox.h"
#include "smpi/transport.h"
#include "smpi/types.h"

namespace smpi {

/// Handle to a nonblocking operation. Copyable; wait() and test() may be
/// called from the posting rank only (as in MPI). A default-constructed
/// Request is "null" and trivially complete.
class Request {
 public:
  Request() = default;
  explicit Request(std::shared_ptr<OpState> state) : state_(std::move(state)) {}

  /// Block until the operation completes; returns its status.
  Status wait();

  /// Nonblocking completion probe.
  bool test() const;

  bool is_null() const { return state_ == nullptr; }

 private:
  std::shared_ptr<OpState> state_;
};

/// The per-process face of one launch: a Transport plus the World-level
/// accessors the runtime and tests sample (message counts, pool stats,
/// delivery counters). Under the threads transport one World serves every
/// rank; under process_shm each rank process holds its own World over its
/// endpoint of the shared segment — either way the accessors report
/// world-wide totals.
class World {
 public:
  /// Classic shape: a threads-as-ranks world (used by tests that build
  /// worlds directly; smpi::launch constructs transports explicitly).
  explicit World(int nranks) : World(make_thread_transport(nranks)) {}

  explicit World(std::unique_ptr<Transport> transport);

  int size() const { return transport_->size(); }

  /// Barrier across all ranks; `rank` is the calling rank.
  void barrier(int rank) { transport_->barrier(rank); }

  /// Total messages delivered world-wide since construction.
  std::uint64_t message_count() const { return transport_->message_count(); }

  /// The unexpected-message payload pool serving this process.
  BufferPool& pool() { return transport_->pool(); }
  const BufferPool& pool() const { return transport_->pool(); }

  /// Rendezvous-vs-queued delivery counters (world-wide totals).
  const TransportCounters& transport() const { return transport_->counters(); }

  /// The transport behind this world (kind checks, diagnostics).
  Transport& impl() { return *transport_; }
  const Transport& impl() const { return *transport_; }

 private:
  std::unique_ptr<Transport> transport_;
};

/// Per-rank communicator. Cheap to copy; all copies refer to the same
/// World. Thread affinity: a Communicator must only be used by the thread
/// of the rank it was created for.
class Communicator {
 public:
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_->size(); }
  World& world() const { return *world_; }

  // --- Point-to-point (byte-level) -------------------------------------

  /// Buffered blocking send: completes locally as soon as the payload has
  /// left `buf` (never deadlocks on itself).
  void send(const void* buf, std::size_t bytes, int dest, int tag) const;

  /// Blocking receive; returns the matched message's status.
  Status recv(void* buf, std::size_t bytes, int source, int tag) const;

  /// Nonblocking send; the returned request is already complete (buffered
  /// semantics) but is provided so call sites read like MPI.
  Request isend(const void* buf, std::size_t bytes, int dest, int tag) const;

  /// Nonblocking receive into `buf` (caller keeps `buf` alive until wait).
  Request irecv(void* buf, std::size_t bytes, int source, int tag) const;

  /// Combined send+recv (used by the basic halo pattern's axis sweeps).
  Status sendrecv(const void* sendbuf, std::size_t send_bytes, int dest,
                  int send_tag, void* recvbuf, std::size_t recv_bytes,
                  int source, int recv_tag) const;

  // --- Typed convenience wrappers ---------------------------------------

  template <typename T>
  void send_n(const T* buf, std::size_t n, int dest, int tag) const {
    send(buf, n * sizeof(T), dest, tag);
  }
  template <typename T>
  Status recv_n(T* buf, std::size_t n, int source, int tag) const {
    return recv(buf, n * sizeof(T), source, tag);
  }

  // --- Collectives -------------------------------------------------------

  void barrier() const;

  /// In-place allreduce over a span of doubles.
  void allreduce(std::span<double> values, ReduceOp op) const;
  /// In-place allreduce over a span of 64-bit integers.
  void allreduce(std::span<std::int64_t> values, ReduceOp op) const;

  /// Broadcast `bytes` from `root` into every rank's `buf`.
  void bcast(void* buf, std::size_t bytes, int root) const;

  /// Gather fixed-size contributions to `root`. On the root, `recv` must
  /// hold size()*bytes; on other ranks it may be empty.
  void gather(const void* sendbuf, std::size_t bytes, void* recvbuf,
              int root) const;

 private:
  template <typename T>
  void allreduce_impl(std::span<T> values, ReduceOp op) const;

  // Tags in the collective channel encode the operation round.
  static constexpr int kCollectiveTag = 0;

  World* world_;
  int rank_;
};

}  // namespace smpi
