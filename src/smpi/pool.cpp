#include "smpi/pool.h"

#include <bit>

namespace smpi {

std::size_t BufferPool::bucket_of(std::size_t bytes) {
  const std::size_t min = bucket_bytes(0);
  if (bytes <= min) {
    return 0;
  }
  return static_cast<std::size_t>(std::bit_width(bytes - 1)) - kMinShift;
}

PoolBuffer BufferPool::acquire(std::size_t bytes) {
  const std::size_t b = bucket_of(bytes);
  if (b < kBuckets) {
    const std::lock_guard<std::mutex> lock(mtx_);
    auto& bucket = buckets_[b];
    if (!bucket.empty()) {
      PoolBuffer buf = std::move(bucket.back());
      bucket.pop_back();
      buf.size = bytes;
      ++hits_;
      return buf;
    }
    ++misses_;
  } else {
    const std::lock_guard<std::mutex> lock(mtx_);
    ++misses_;
  }
  PoolBuffer buf;
  buf.capacity = b < kBuckets ? bucket_bytes(b) : bytes;
  // Plain new[]: deliberately uninitialized, the payload copy overwrites
  // exactly `size` bytes.
  buf.data = std::unique_ptr<std::byte[]>(new std::byte[buf.capacity]);
  buf.size = bytes;
  return buf;
}

void BufferPool::release(PoolBuffer&& buf) {
  if (!buf) {
    return;
  }
  const std::size_t b = bucket_of(buf.capacity);
  const std::lock_guard<std::mutex> lock(mtx_);
  ++releases_;
  if (b < kBuckets && bucket_bytes(b) == buf.capacity &&
      buckets_[b].size() < kMaxPerBucket) {
    buckets_[b].push_back(std::move(buf));
  }
  // else: odd capacity or full bucket — drop, unique_ptr frees it.
}

void BufferPool::trim() {
  const std::lock_guard<std::mutex> lock(mtx_);
  for (auto& bucket : buckets_) {
    bucket.clear();
  }
}

BufferPool::Stats BufferPool::stats() const {
  const std::lock_guard<std::mutex> lock(mtx_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.releases = releases_;
  for (const auto& bucket : buckets_) {
    s.pooled_buffers += bucket.size();
    for (const PoolBuffer& buf : bucket) {
      s.pooled_bytes += buf.capacity;
    }
  }
  return s;
}

}  // namespace smpi
