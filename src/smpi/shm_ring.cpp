#include "smpi/shm_ring.h"

#include <algorithm>
#include <cstring>
#include <new>

namespace smpi {

std::size_t ShmRing::round_capacity(std::size_t n) {
  std::size_t cap = 4096;
  while (cap < n) {
    cap <<= 1;
  }
  return cap;
}

ShmRing* ShmRing::init(void* mem, std::size_t capacity) {
  return new (mem) ShmRing(capacity);
}

std::size_t ShmRing::try_write(const void* src, std::size_t bytes) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t free_bytes =
      capacity_ - static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(bytes, free_bytes);
  if (n == 0) {
    return 0;
  }
  const std::size_t mask = capacity_ - 1;
  const std::size_t pos = static_cast<std::size_t>(tail) & mask;
  const std::size_t first = std::min(n, capacity_ - pos);
  std::memcpy(data() + pos, src, first);
  if (n > first) {
    std::memcpy(data(), static_cast<const std::byte*>(src) + first, n - first);
  }
  tail_.store(tail + n, std::memory_order_release);
  return n;
}

std::size_t ShmRing::try_read(void* dst, std::size_t bytes) {
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::size_t avail = static_cast<std::size_t>(tail - head);
  const std::size_t n = std::min(bytes, avail);
  if (n == 0) {
    return 0;
  }
  const std::size_t mask = capacity_ - 1;
  const std::size_t pos = static_cast<std::size_t>(head) & mask;
  const std::size_t first = std::min(n, capacity_ - pos);
  std::memcpy(dst, data() + pos, first);
  if (n > first) {
    std::memcpy(static_cast<std::byte*>(dst) + first, data(), n - first);
  }
  head_.store(head + n, std::memory_order_release);
  return n;
}

std::size_t ShmRing::readable() const {
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  return static_cast<std::size_t>(tail - head);
}

}  // namespace smpi
