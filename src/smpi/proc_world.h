// The process_shm transport: ranks as forked OS processes.
//
// smpi::launch (runtime.cpp) calls launch_process_shm() when the
// transport resolves to TransportKind::ProcessShm. The launching process
// *is* rank 0 — mirroring the threads transport, where rank 0 runs on
// the calling thread — and ranks 1..n-1 are forked children. They share:
//
//   - one MAP_SHARED | MAP_ANONYMOUS segment created before fork,
//     holding the world-wide message/delivery counters and one SPSC byte
//     ring per ordered rank pair (smpi/shm_ring.h);
//   - one SOCK_STREAM socketpair per child: the control channel for the
//     startup handshake, barriers, and exit/error reporting.
//
// Pack/unpack plans, collectives, health reduction and the interpreter
// run unchanged: they only see Communicator over the Transport seam.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>

namespace smpi {

class Communicator;

/// Failure of a non-zero rank process, rethrown by the launcher in the
/// launching process. Rank 0 runs in the launching process itself, so
/// its exceptions are rethrown with their original type; child errors
/// cross the process boundary as what() strings and arrive as RankError.
class RankError : public std::runtime_error {
 public:
  RankError(int rank, const std::string& message)
      : std::runtime_error("rank " + std::to_string(rank) + ": " + message),
        rank_(rank) {}

  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Run `body` as `nranks` processes over shared-memory rings of
/// `ring_bytes` payload capacity each (rounded up to a power of two).
/// Returns after every rank process has exited; the first error by rank
/// order is rethrown (rank 0 with its original type, children as
/// RankError). Traces recorded by child ranks are merged into this
/// process's registry (obs::import_file) before returning.
void launch_process_shm(int nranks, std::size_t ring_bytes,
                        const std::function<void(Communicator&)>& body);

}  // namespace smpi
