#include "core/operator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "codegen/emit.h"
#include "core/env.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "symbolic/manip.h"

namespace jitfd::core {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Interpret:
      return "interpret";
    case Backend::Jit:
      return "jit";
  }
  return "?";
}

namespace {

/// Context handed to the generated kernel's callback table.
struct JitCtx {
  runtime::HaloExchange* halo;
  std::vector<runtime::SparseOp*>* sparse;
  obs::health::Sink* health = nullptr;
  // Generated code refers to fields by their position in field_order so
  // identical operators emit identical (cache-shareable) source; the
  // trampoline maps that position back to the process-global field id.
  const std::vector<int>* field_order = nullptr;
};

void tramp_update(void* c, int spot, long time) {
  static_cast<JitCtx*>(c)->halo->update(spot, time);
}
void tramp_start(void* c, int spot, long time) {
  static_cast<JitCtx*>(c)->halo->start(spot, time);
}
void tramp_wait(void* c, int spot) {
  static_cast<JitCtx*>(c)->halo->wait(spot);
}
void tramp_progress(void* c) {
  auto* ctx = static_cast<JitCtx*>(c);
  if (ctx->halo != nullptr) {
    ctx->halo->progress();
  }
}
void tramp_sparse(void* c, int sparse_id, long time) {
  const obs::Span span("sparse.apply", obs::Cat::Sparse, time, sparse_id);
  static_cast<JitCtx*>(c)->sparse->at(static_cast<std::size_t>(sparse_id))
      ->apply(time);
}
void tramp_step(void* c, long time) {
  static_cast<JitCtx*>(c)->health->on_step(time);
}
void tramp_health(void* c, int field_pos, long time, long nan_count,
                  long inf_count, double min, double max, double l2sq) {
  auto* ctx = static_cast<JitCtx*>(c);
  obs::health::LocalStats stats;
  stats.nan_count = nan_count;
  stats.inf_count = inf_count;
  stats.min = min;
  stats.max = max;
  stats.l2sq = l2sq;
  const int field_id =
      ctx->field_order->at(static_cast<std::size_t>(field_pos));
  ctx->health->on_check(field_id, time, stats);
}

/// Fault-injection hook for the flight-recorder self-test:
/// JITFD_INJECT_NAN="rank:step" poisons one owned-interior point of the
/// first checked field on that rank at the top of that step, so the
/// step's compute propagates it into the written buffer and the next
/// health check detects it. Wraps the real monitor as the installed
/// Sink; injection happens at most once per apply.
class InjectNanSink : public obs::health::Sink {
 public:
  InjectNanSink(obs::health::Sink* inner, grid::Function* target, int rank,
                int inject_rank, std::int64_t inject_step)
      : inner_(inner),
        target_(target),
        rank_(rank),
        inject_rank_(inject_rank),
        inject_step_(inject_step) {}

  void on_step(std::int64_t time) override {
    inner_->on_step(time);
    if (!done_ && rank_ == inject_rank_ && time == inject_step_) {
      done_ = true;
      std::vector<std::int64_t> center;
      for (const std::int64_t s : target_->local_shape()) {
        center.push_back(s / 2);
      }
      // Poison the buffer read at this step (relative offset 0): the
      // stencil update spreads it into the written buffer before the
      // end-of-step check runs.
      target_->at_local(target_->buffer_index(0, time), center) =
          std::numeric_limits<float>::quiet_NaN();
    }
  }

  void on_check(int field_id, std::int64_t time,
                const obs::health::LocalStats& local) override {
    inner_->on_check(field_id, time, local);
  }

 private:
  obs::health::Sink* inner_;
  grid::Function* target_;
  int rank_;
  int inject_rank_;
  std::int64_t inject_step_;
  bool done_ = false;
};

}  // namespace

Operator::Operator(std::vector<ir::Eq> eqs, ir::CompileOptions opts,
                   std::vector<runtime::SparseOp*> sparse_ops)
    : eqs_(std::move(eqs)), opts_(opts), sparse_ops_(std::move(sparse_ops)) {
  if (eqs_.empty()) {
    throw std::invalid_argument("Operator: no equations");
  }
  // Resolve every referenced field through the registry.
  obs::Span resolve_span("compile.resolve_fields", obs::Cat::Compile,
                         static_cast<std::int64_t>(eqs_.size()));
  for (const ir::Eq& eq : eqs_) {
    for (const sym::Ex& e : {eq.lhs, eq.rhs}) {
      sym::walk(e, [&](const sym::Ex& sub) {
        if (sub.kind() == sym::Kind::FieldAccess) {
          grid::Function* f = grid::lookup_field(sub.node().field.id);
          if (f == nullptr) {
            throw std::invalid_argument("Operator: field '" +
                                        sub.node().field.name +
                                        "' is no longer alive");
          }
          fields_.add(f);
        }
      });
    }
  }
  resolve_span.close();
  grid_ = &fields_.all().front()->grid();
  for (const grid::Function* f : fields_.all()) {
    if (&f->grid() != grid_) {
      throw std::invalid_argument(
          "Operator: all fields must share one grid");
    }
  }

  if (grid_->distributed() && opts_.mode == ir::MpiMode::None) {
    // The Devito-style environment override (DEVITO_MPI=diag analogue):
    // JITFD_MPI selects the pattern without touching user code; Basic is
    // the default, as running distributed without exchanges would
    // silently compute garbage.
    // Strict: an unrecognized value is a hard error listing the accepted
    // spellings, never a silent fall-through to the default pattern.
    const std::string mode = env::get_enum(
        "JITFD_MPI", "basic",
        {"none", "0", "", "basic", "1", "diagonal", "diag", "diag2", "full"});
    opts_.mode = mode.empty() ? ir::MpiMode::None : ir::mode_from_string(mode);
    if (opts_.mode == ir::MpiMode::None) {
      opts_.mode = ir::MpiMode::Basic;
    }
  }

  if (opts_.tile.empty()) {
    // Process-wide default (JITFD_TILE or Function::set_default_tile),
    // mirroring the exchange-depth override: select tiling without
    // touching user code. Infeasible entries are clamped and recorded by
    // the lowering pass.
    opts_.tile = grid::Function::default_tile();
  }

  std::vector<ir::SparseOpDesc> descs;
  for (std::size_t i = 0; i < sparse_ops_.size(); ++i) {
    descs.push_back(ir::SparseOpDesc{static_cast<int>(i)});
  }
  iet_ = ir::lower_to_iet(eqs_, *grid_, opts_, descs, info_);

  if (grid_->distributed() && opts_.mode != ir::MpiMode::None) {
    const obs::Span span("compile.register_spots", obs::Cat::Compile,
                         static_cast<std::int64_t>(info_.spots.size()));
    halo_ = std::make_unique<runtime::HaloExchange>(*grid_, opts_.mode);
    halo_->set_exchange_depth(info_.exchange_depth);
    for (const ir::SpotInfo& spot : info_.spots) {
      halo_->register_spot(spot, fields_);
    }
  }
}

const std::string& Operator::ccode() const {
  if (ccode_.empty()) {
    ccode_ = codegen::emit_c(iet_, info_, fields_, *grid_, opts_);
  }
  return ccode_;
}

std::string Operator::describe() const {
  std::ostringstream os;
  os << "Operator: " << eqs_.size() << " equation(s) on grid (";
  for (int d = 0; d < grid_->ndims(); ++d) {
    os << (d ? "," : "") << grid_->shape()[static_cast<std::size_t>(d)];
  }
  os << ")";
  if (grid_->distributed()) {
    os << ", " << grid_->cart()->size() << " ranks, topology (";
    for (std::size_t d = 0; d < grid_->topology().size(); ++d) {
      os << (d ? "," : "") << grid_->topology()[d];
    }
    os << "), mode " << ir::to_string(opts_.mode);
  } else {
    os << ", serial";
  }
  if (info_.exchange_depth > 1) {
    os << ", exchange depth " << info_.exchange_depth;
    if (!info_.exchange_depth_clamp_reason.empty()) {
      os << " (clamped: " << info_.exchange_depth_clamp_reason << ")";
    }
  } else if (!info_.exchange_depth_clamp_reason.empty()) {
    os << ", exchange depth 1 (clamped: "
       << info_.exchange_depth_clamp_reason << ")";
  }
  const bool tiled = std::any_of(info_.tile.begin(), info_.tile.end(),
                                 [](std::int64_t t) { return t > 0; });
  if (tiled || !info_.tile_clamp_reason.empty()) {
    os << ", tile (";
    for (std::size_t d = 0; d < info_.tile.size(); ++d) {
      os << (d ? "," : "") << info_.tile[d];
    }
    os << ")";
    if (!info_.tile_clamp_reason.empty()) {
      os << " (clamped: " << info_.tile_clamp_reason << ")";
    }
  }
  if (info_.time_tile) {
    os << ", time-tiled";
  } else if (!info_.time_tile_clamp_reason.empty()) {
    os << ", time tiling off (" << info_.time_tile_clamp_reason << ")";
  }
  os << "\n  fields:";
  for (const grid::Function* f : fields_.all()) {
    os << ' ' << f->name() << (f->field_id().time_varying
                                   ? "[x" + std::to_string(f->time_buffers()) +
                                         (f->saved() ? " saved]" : "]")
                                   : "");
  }
  // Per-point flop count of the time-loop statements (remainder
  // duplicates excluded, as in models::analyze).
  int flops = 0;
  int nests = 0;
  std::set<std::size_t> seen;
  const std::function<void(const ir::NodePtr&, bool)> visit =
      [&](const ir::NodePtr& n, bool in_remainder) {
        if (n->type == ir::NodeType::Section) {
          const bool rem = n->name == "remainder";
          for (const auto& c : n->body) {
            visit(c, in_remainder || rem);
          }
          return;
        }
        if (n->type == ir::NodeType::Iteration && n->dim == 0 &&
            !in_remainder) {
          ++nests;
        }
        if (n->type == ir::NodeType::Expression && !in_remainder &&
            seen.insert(n->value.hash()).second) {
          flops += sym::count_flops(n->value);
        }
        for (const auto& c : n->body) {
          visit(c, in_remainder);
        }
      };
  for (const auto& top : iet_->body) {
    if (top->type == ir::NodeType::TimeLoop) {
      visit(top, false);
    }
  }
  os << "\n  clusters: " << nests << ", flops/point: " << flops
     << ", hoisted scalars: " << info_.invariants.size();
  os << "\n  halo spots: " << info_.spots.size();
  for (const auto& spot : info_.spots) {
    os << " [" << (spot.hoisted ? "hoisted" : "per-step") << ": "
       << spot.needs.size() << " field(s)]";
  }
  if (!sparse_ops_.empty()) {
    os << "\n  sparse ops/step: " << sparse_ops_.size();
  }
  return os.str();
}

runtime::HaloStats Operator::cumulative_halo_stats() const {
  return halo_ != nullptr ? halo_->stats() : runtime::HaloStats{};
}

namespace {

/// Per-run deltas of the counters; post-run snapshot of the gauges.
runtime::HaloStats halo_delta(const runtime::HaloStats& before,
                              const runtime::HaloStats& after) {
  runtime::HaloStats d = after;
  d.updates = after.updates - before.updates;
  d.starts = after.starts - before.starts;
  d.messages = after.messages - before.messages;
  d.bytes_sent = after.bytes_sent - before.bytes_sent;
  d.bytes_received = after.bytes_received - before.bytes_received;
  d.progress_calls = after.progress_calls - before.progress_calls;
  return d;
}

}  // namespace

RunSummary Operator::apply(const ApplyArgs& args) {
  const obs::EnableScope trace_scope(args.trace);

  std::map<std::string, double> scalars = args.scalars;
  // Bind grid spacings automatically (paper: users never pass h_*).
  for (int d = 0; d < grid_->ndims(); ++d) {
    scalars.emplace("h_" + grid::Grid::dim_name(d), grid_->spacing(d));
  }
  // The reserved health-interval scalar is bound by the runtime, never
  // by the user.
  scalars[ir::kHealthIntervalScalar] =
      static_cast<double>(args.health_interval);
  for (const std::string& name : info_.scalar_order) {
    if (scalars.find(name) == scalars.end()) {
      throw std::invalid_argument("Operator::apply: unbound symbol '" + name +
                                  "'");
    }
  }

  RunSummary out;
  out.backend = args.backend.value_or(backend_);
  out.steps = args.time_M - args.time_m + 1;
  out.trace = obs::TraceHandle(args.trace && obs::enabled());

  // Numerical-health monitor (only when the lowered IET carries health
  // kernels; JITFD_OBS=OFF builds never do).
  std::unique_ptr<obs::health::Monitor> monitor;
  std::unique_ptr<obs::health::Sink> inject;
  obs::health::Sink* sink = nullptr;
  const int rank = grid_->distributed() ? grid_->cart()->comm().rank() : 0;
  if (args.health_interval > 0 && !info_.health_checks.empty()) {
    obs::health::Monitor::Options mopts;
    mopts.on_nan = args.on_nan;
    mopts.comm = grid_->distributed() ? &grid_->cart()->comm() : nullptr;
    mopts.rank = rank;
    mopts.field_name = [this](int id) { return fields_.at(id).name(); };
    monitor = std::make_unique<obs::health::Monitor>(mopts);
    sink = monitor.get();
    const std::string inj = env::get_string("JITFD_INJECT_NAN", "");
    if (!inj.empty()) {
      int inj_rank = -1;
      long inj_step = -1;
      if (std::sscanf(inj.c_str(), "%d:%ld", &inj_rank, &inj_step) != 2) {
        throw std::invalid_argument("JITFD_INJECT_NAN='" + inj +
                                    "': expected \"rank:step\"");
      }
      inject = std::make_unique<InjectNanSink>(
          monitor.get(), &fields_.at(info_.health_checks.front().field_id),
          rank, inj_rank, inj_step);
      sink = inject.get();
    }
    // Run configuration for a potential post-mortem bundle.
    {
      std::ostringstream shape;
      shape << '[';
      for (int d = 0; d < grid_->ndims(); ++d) {
        shape << (d ? ", " : "") << grid_->shape()[static_cast<std::size_t>(d)];
      }
      shape << ']';
      obs::flight::set_config("grid_shape", shape.str());
      obs::flight::set_config("mode",
                              "\"" + std::string(ir::to_string(opts_.mode)) +
                                  "\"");
      obs::flight::set_config(
          "exchange_depth", std::to_string(info_.exchange_depth));
      obs::flight::set_config(
          "backend", "\"" + std::string(to_string(out.backend)) + "\"");
      obs::flight::set_config("health_interval",
                              std::to_string(args.health_interval));
      obs::flight::set_config(
          "on_nan",
          "\"" + std::string(obs::health::to_string(args.on_nan)) + "\"");
      obs::flight::set_config(
          "ranks",
          std::to_string(grid_->distributed() ? grid_->cart()->size() : 1));
    }
  }

  const runtime::HaloStats before = cumulative_halo_stats();
  const double jit_cc_before = jit_compile_seconds_;
  const bool had_kernel = jit_ != nullptr;

  const obs::Span span("apply", obs::Cat::Run, args.time_m,
                       static_cast<std::int32_t>(out.steps));
  const auto start = std::chrono::steady_clock::now();
  if (out.backend == Backend::Interpret) {
    runtime::Interpreter interp(iet_, fields_, halo_.get(), sparse_ops_);
    if (sink != nullptr) {
      interp.set_health(sink, args.health_interval);
    }
    interp.run(args.time_m, args.time_M, scalars);
  } else {
    run_jit(args.time_m, args.time_M, scalars, sink);
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  out.points_updated = grid_->points() * out.steps;
  if (out.seconds > 0.0) {
    out.gpts_per_s =
        static_cast<double>(out.points_updated) / out.seconds / 1e9;
  }
  out.halo = halo_delta(before, cumulative_halo_stats());
  if (!had_kernel && jit_ != nullptr) {
    out.jit_compile_seconds = jit_compile_seconds_ - jit_cc_before;
    out.jit_cache_hit = jit_cache_hit_;
  }
  static obs::metrics::Counter& applies = obs::metrics::counter("op.applies");
  static obs::metrics::Counter& steps = obs::metrics::counter("op.steps");
  applies.add(1);
  steps.add(static_cast<std::uint64_t>(out.steps));
  if (monitor != nullptr) {
    out.health = monitor->summary();
  }
  return out;
}

void Operator::run_jit(std::int64_t time_m, std::int64_t time_M,
                       const std::map<std::string, double>& scalars,
                       obs::health::Sink* health_sink) {
  if (jit_ == nullptr) {
    jit_ = std::make_unique<codegen::JitKernel>(
        ccode(), opts_.lang == ir::Lang::OpenMP && opts_.openmp);
    jit_compile_seconds_ = jit_->compile_seconds();
    jit_cache_hit_ = jit_->cache_hit();
  }
  std::vector<float*> field_ptrs;
  field_ptrs.reserve(info_.field_order.size());
  for (const int id : info_.field_order) {
    field_ptrs.push_back(fields_.at(id).buffer(0));
  }
  std::vector<double> scalar_vals;
  scalar_vals.reserve(info_.scalar_order.size());
  for (const std::string& name : info_.scalar_order) {
    scalar_vals.push_back(scalars.at(name));
  }
  JitCtx ctx{halo_.get(), &sparse_ops_, health_sink, &info_.field_order};
  codegen::JitHaloOps ops;
  ops.update = &tramp_update;
  ops.start = &tramp_start;
  ops.wait = &tramp_wait;
  ops.progress = &tramp_progress;
  ops.sparse = &tramp_sparse;
  if (health_sink != nullptr) {
    ops.step = &tramp_step;
    ops.health = &tramp_health;
  }
  // The generated loops carry no spans; obs derives compute time from
  // this umbrella minus the halo/sparse callbacks nested inside it.
  const obs::Span span("jit.run", obs::Cat::Run, time_m,
                       static_cast<std::int32_t>(time_M - time_m + 1));
  const int rc = jit_->run(field_ptrs.data(), scalar_vals.data(), time_m,
                           time_M, &ctx, &ops);
  if (rc != 0) {
    throw std::runtime_error("Operator: generated kernel returned " +
                             std::to_string(rc));
  }
}

}  // namespace jitfd::core
