// Typed runtime-configuration registry: the single home of every
// JITFD_* environment variable.
//
// Every knob the runtime reads from the environment is declared once in
// the table in env.cpp (name, type, default, documentation) and accessed
// through the typed getters here. The getters are strict: a set-but-
// malformed value is a hard error (std::invalid_argument naming the
// variable and the accepted form), never a silent fallback — a typo'd
// JITFD_MPI=digaonal must not quietly run the basic pattern.
//
// Call sites outside this module must not call std::getenv("JITFD_...")
// directly (enforced by a repo-wide grep in review); new knobs register
// here first, so `quickstart --env` and the README table stay complete
// by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace jitfd::env {

/// One declared environment variable (the registry row).
struct Var {
  const char* name;  ///< "JITFD_TRANSPORT"
  const char* type;  ///< "bool"|"int"|"float"|"string"|"int-list"|"enum(..)"
  const char* def;   ///< Default, as documented ("threads", "1", "unset").
  const char* help;  ///< One-line description.
};

/// The full registry, sorted by name. This is the documented table that
/// `quickstart --env` renders and README.md mirrors.
const std::vector<Var>& vars();

/// Render the registry as an aligned text table, one row per variable,
/// with the live value (or "unset") appended.
std::string describe();

/// Whether `name` is set (possibly empty) in the environment. Throws
/// std::logic_error for names missing from the registry.
bool is_set(const char* name);

/// Raw value when set. Registry-checked like is_set().
std::optional<std::string> raw(const char* name);

/// Truthy parse: unset -> def; "" and "0" -> false; anything else ->
/// true (mirrors the historical JITFD_TRACE / JITFD_EVENTS semantics).
bool get_bool(const char* name, bool def);

/// Integer parse; unset -> def; non-integer text -> hard error.
std::int64_t get_int(const char* name, std::int64_t def);

/// Floating-point parse; unset -> def; non-numeric text -> hard error.
double get_float(const char* name, double def);

/// String value; unset -> def. No validation beyond registry membership.
std::string get_string(const char* name, const std::string& def);

/// Validated choice: unset -> def; anything not in `allowed` is a hard
/// error listing the accepted values. Returns the matched string.
std::string get_enum(const char* name, const std::string& def,
                     const std::vector<std::string>& allowed);

/// Comma-separated integer list ("16,8,0"); unset -> empty. Empty
/// tokens mean 0 ("8,,2" -> {8,0,2}); non-numeric tokens are a hard
/// error. Used by JITFD_TILE (a 0 entry leaves that dimension untiled).
std::vector<std::int64_t> get_int_list(const char* name);

/// The strict list parser behind get_int_list, exposed so API-level
/// parsers (Function::parse_tile) share one grammar. `what` names the
/// source in error messages.
std::vector<std::int64_t> parse_int_list(const std::string& what,
                                         const std::string& text);

}  // namespace jitfd::env
