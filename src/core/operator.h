// Operator: the DSL's entry point (paper Listing 1, line 20).
//
// Construction runs the whole compiler pipeline: clustering, flop
// reduction, halo detection, scheduling, pattern lowering. apply() then
// executes the lowered IET either through the reference interpreter or
// through JIT-compiled generated C (both drive the same HaloExchange
// runtime), for time steps time_m..time_M.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "codegen/jit.h"
#include "ir/eq.h"
#include "ir/lower.h"
#include "runtime/halo.h"
#include "runtime/interpreter.h"

namespace jitfd::core {

class Operator {
 public:
  enum class Backend {
    Interpret,  ///< Reference IET interpreter (default: no external cc).
    Jit,        ///< Generated C compiled to a shared object and dlopen'd.
  };

  /// Builds and lowers the operator. Functions referenced by the
  /// equations are resolved through the field registry, so they must be
  /// alive (and stay alive for the Operator's lifetime).
  ///
  /// If the grid is distributed and opts.mode is None, the mode is
  /// upgraded to Basic — running distributed without halo exchanges would
  /// silently compute garbage.
  explicit Operator(std::vector<ir::Eq> eqs, ir::CompileOptions opts = {},
                    std::vector<runtime::SparseOp*> sparse_ops = {});

  /// Execute time steps time_m..time_M (inclusive). Spacing symbols
  /// (h_x, h_y, h_z) are bound automatically from the grid; every other
  /// free symbol (dt, model constants) must be given in `scalars`.
  void apply(std::int64_t time_m, std::int64_t time_M,
             std::map<std::string, double> scalars = {});

  void set_backend(Backend b) { backend_ = b; }
  Backend backend() const { return backend_; }

  /// Compiler products, for inspection, tests and benchmarks.
  const ir::LoweringInfo& info() const { return info_; }
  const ir::NodePtr& iet() const { return iet_; }
  const ir::CompileOptions& options() const { return opts_; }
  /// Generated C source (emitted on first call, cached).
  const std::string& ccode();

  /// Human-readable compilation report (the DEVITO_LOGGING=DEBUG
  /// analogue): fields, pattern, clusters, halo spots, flop counts.
  std::string describe() const;

  /// Statistics of the halo-exchange runtime (zeros for serial grids).
  runtime::HaloStats halo_stats() const;
  /// External-compiler wall time of the last JIT build (0 if none, or
  /// if the build was served from the compile cache).
  double jit_compile_seconds() const { return jit_compile_seconds_; }
  /// Whether the last JIT build was a compile-cache hit (false if the
  /// operator has not been JIT-compiled yet).
  bool jit_cache_hit() const { return jit_cache_hit_; }
  /// Grid points updated by the last apply() (points * steps), the
  /// numerator of the paper's GPts/s metric.
  std::int64_t points_updated() const { return points_updated_; }

 private:
  void run_jit(std::int64_t time_m, std::int64_t time_M,
               const std::map<std::string, double>& scalars);

  std::vector<ir::Eq> eqs_;
  ir::CompileOptions opts_;
  ir::FieldTable fields_;
  const grid::Grid* grid_ = nullptr;
  ir::LoweringInfo info_;
  ir::NodePtr iet_;
  std::unique_ptr<runtime::HaloExchange> halo_;
  std::vector<runtime::SparseOp*> sparse_ops_;
  Backend backend_ = Backend::Interpret;
  std::string ccode_;
  std::unique_ptr<codegen::JitKernel> jit_;
  double jit_compile_seconds_ = 0.0;
  bool jit_cache_hit_ = false;
  std::int64_t points_updated_ = 0;
};

}  // namespace jitfd::core
