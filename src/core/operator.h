// Operator: the DSL's entry point (paper Listing 1, line 20).
//
// Construction runs the whole compiler pipeline: clustering, flop
// reduction, halo detection, scheduling, pattern lowering. apply() then
// executes the lowered IET either through the reference interpreter or
// through JIT-compiled generated C (both drive the same HaloExchange
// runtime), for time steps time_m..time_M.
//
// Runs are configured with designated initializers and report through a
// RunSummary:
//
//   auto run = op.apply({.time_m = 0, .time_M = 100,
//                        .scalars = {{"dt", dt}},
//                        .backend = core::Backend::Jit,
//                        .trace = true});
//   std::cout << run.gpts_per_s << '\n' << run.trace.summary();
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "codegen/jit.h"
#include "ir/eq.h"
#include "ir/lower.h"
#include "obs/health.h"
#include "obs/report.h"
#include "runtime/halo.h"
#include "runtime/interpreter.h"

namespace jitfd::core {

enum class Backend {
  Interpret,  ///< Reference IET interpreter (default: no external cc).
  Jit,        ///< Generated C compiled to a shared object and dlopen'd.
};

const char* to_string(Backend b);

/// Run configuration for Operator::apply(), meant for designated
/// initializers: every field has a usable default except the time range
/// you almost always want to set.
struct ApplyArgs {
  std::int64_t time_m = 0;  ///< First time step (inclusive).
  std::int64_t time_M = 0;  ///< Last time step (inclusive).
  /// Bindings for free symbols (dt, model constants). Grid spacings
  /// (h_x, ...) are bound automatically.
  std::map<std::string, double> scalars = {};
  /// Overrides the operator's default backend for this run only.
  std::optional<Backend> backend = std::nullopt;
  /// Record per-rank spans for this run (see obs/trace.h); the returned
  /// RunSummary::trace exposes summaries, Chrome JSON, and the profile
  /// the perfmodel comparison consumes. No-op when the build was
  /// configured with JITFD_OBS=OFF.
  bool trace = false;
  /// Run the compiler-generated numerical-health kernels every N steps
  /// (0 = never; the generated checks cost one comparison per step).
  /// Results land in RunSummary::health, obs/metrics, the event log and
  /// the flight recorder's health ring.
  std::int64_t health_interval = 0;
  /// Policy when a health check finds NaN/Inf points (ignored unless
  /// health_interval > 0). AbortDump writes the flight-recorder bundle
  /// and throws obs::health::DivergenceError on every rank.
  obs::health::OnNan on_nan = obs::health::OnNan::Record;
};

/// What one apply() did, measured on the calling rank. Values are
/// per-run (deltas over the run), not process-cumulative.
struct RunSummary {
  std::int64_t steps = 0;           ///< time_M - time_m + 1.
  std::int64_t points_updated = 0;  ///< Global grid points x steps.
  double seconds = 0.0;             ///< Wall time of the run on this rank.
  double gpts_per_s = 0.0;          ///< points_updated / seconds / 1e9.
  Backend backend = Backend::Interpret;  ///< Backend that actually ran.
  /// External-compiler wall time spent during this run (0 when no JIT
  /// build happened or it was served from the compile cache).
  double jit_compile_seconds = 0.0;
  /// Whether this run's JIT build hit the compile cache (false for
  /// interpreter runs and for runs reusing an already-built kernel).
  bool jit_cache_hit = false;
  /// Halo-exchange activity of this run: counters (updates, messages,
  /// bytes) are deltas; gauges (copies_per_message, pool_*) are the
  /// post-run snapshot. All zeros for serial grids.
  runtime::HaloStats halo;
  /// Active when ApplyArgs::trace was set; snapshot it after every rank
  /// has finished (e.g. after smpi::run returns).
  obs::TraceHandle trace;
  /// Numerical-health outcome (all zeros / healthy() when
  /// ApplyArgs::health_interval was 0 or the layer is compiled out).
  obs::health::Summary health;
};

class Operator {
 public:
  using Backend = ::jitfd::core::Backend;  ///< Compat alias.

  /// Builds and lowers the operator. Functions referenced by the
  /// equations are resolved through the field registry, so they must be
  /// alive (and stay alive for the Operator's lifetime).
  ///
  /// If the grid is distributed and opts.mode is None, the mode is
  /// upgraded to Basic — running distributed without halo exchanges would
  /// silently compute garbage.
  explicit Operator(std::vector<ir::Eq> eqs, ir::CompileOptions opts = {},
                    std::vector<runtime::SparseOp*> sparse_ops = {});

  /// Execute time steps args.time_m..args.time_M (inclusive).
  RunSummary apply(const ApplyArgs& args = {});

  /// Default backend for runs that don't set ApplyArgs::backend.
  void set_default_backend(Backend b) { backend_ = b; }
  Backend default_backend() const { return backend_; }

  /// Compiler products, for inspection, tests and benchmarks.
  const ir::LoweringInfo& info() const { return info_; }
  const ir::NodePtr& iet() const { return iet_; }
  const ir::CompileOptions& options() const { return opts_; }
  /// Generated C source (emitted on first call, cached).
  const std::string& ccode() const;

  /// Human-readable compilation report (the DEVITO_LOGGING=DEBUG
  /// analogue): fields, pattern, clusters, halo spots, flop counts.
  std::string describe() const;

 private:
  runtime::HaloStats cumulative_halo_stats() const;
  void run_jit(std::int64_t time_m, std::int64_t time_M,
               const std::map<std::string, double>& scalars,
               obs::health::Sink* health_sink);

  std::vector<ir::Eq> eqs_;
  ir::CompileOptions opts_;
  ir::FieldTable fields_;
  const grid::Grid* grid_ = nullptr;
  ir::LoweringInfo info_;
  ir::NodePtr iet_;
  std::unique_ptr<runtime::HaloExchange> halo_;
  std::vector<runtime::SparseOp*> sparse_ops_;
  Backend backend_ = Backend::Interpret;
  mutable std::string ccode_;  ///< Lazily emitted; logically const.
  std::unique_ptr<codegen::JitKernel> jit_;
  double jit_compile_seconds_ = 0.0;
  bool jit_cache_hit_ = false;
};

}  // namespace jitfd::core
