#include "core/env.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace jitfd::env {

namespace {

// The single documented table. Keep sorted by name; README.md mirrors
// this list and `quickstart --env` renders it.
const Var kVars[] = {
    {"JITFD_AUTOTUNE_OBJECTIVE", "enum(wall|attributed)", "wall",
     "Autotuner scoring objective: raw wall-clock seconds, or attributed "
     "cost (wait + redundant compute + imbalance penalty) from tracing"},
    {"JITFD_CACHE_DIR", "string", "unset",
     "Persistent JIT compile cache directory shared across processes "
     "(unset: per-process scratch dir under $TMPDIR, removed at exit)"},
    {"JITFD_CC", "string", "cc",
     "C compiler used for JIT builds of generated kernels"},
    {"JITFD_DELAY_RANK", "int", "unset",
     "Constructed-imbalance hook: rank whose interpreter steps are padded "
     "by JITFD_DELAY_US microseconds (wait-state analyzer tests)"},
    {"JITFD_DELAY_US", "int", "unset",
     "Per-step compute padding in microseconds on JITFD_DELAY_RANK"},
    {"JITFD_EVENTS", "bool", "0",
     "Enable the structured event log (obs/events) from process start"},
    {"JITFD_EVENTS_RING", "int", "1024",
     "Event-log ring capacity (events per thread, rounded to power of 2)"},
    {"JITFD_EXCHANGE_DEPTH", "int", "1",
     "Default halo capacity / deep-halo exchange depth k for Functions "
     "constructed afterwards (see Function::set_default_exchange_depth)"},
    {"JITFD_FLIGHT_DIR", "string", ".",
     "Directory receiving flight-recorder post-mortem bundles "
     "(jitfd_flight.json)"},
    {"JITFD_INJECT_NAN", "string", "unset",
     "Fault injection \"rank:step\": poison one owned-interior point of "
     "the first health-checked field (flight-recorder self-test hook)"},
    {"JITFD_KEEP", "bool", "0",
     "Keep the per-process JIT scratch cache directory at exit"},
    {"JITFD_METRICS", "bool", "0",
     "Enable the obs/metrics counters/gauges/histograms registry"},
    {"JITFD_MPI", "enum(none|basic|diagonal|full)", "basic",
     "Halo-exchange pattern for distributed Operators that leave "
     "CompileOptions::mode unset (DEVITO_MPI analogue)"},
    {"JITFD_REBALANCE_THRESHOLD", "float", "1.25",
     "Imbalance ratio (max/mean compute) above which autotune recommends "
     "and Grid::plan_rebalance computes a biased domain split"},
    {"JITFD_SHM_RING_KB", "int", "256",
     "Per-direction shared-memory ring capacity in KiB for the "
     "process_shm transport (rounded to a power of two)"},
    {"JITFD_TILE", "int-list", "unset",
     "Default per-dimension cache-block shape \"tz,ty,tx\" for Operators "
     "that leave CompileOptions::tile empty (0 entries stay untiled)"},
    {"JITFD_TIME_SLACK", "int", "0",
     "Extra time buffers beyond time_order+1 for unsaved TimeFunctions "
     "(time-tiling feasibility; see Function::set_default_time_slack)"},
    {"JITFD_TRACE", "bool", "0",
     "Enable per-rank span tracing (obs/trace) from process start"},
    {"JITFD_TRACE_RING", "int", "65536",
     "Trace ring capacity (events per thread, rounded to power of 2)"},
    {"JITFD_TRANSPORT", "enum(threads|process_shm)", "threads",
     "Rank realization for smpi::launch calls that leave "
     "LaunchOptions::transport unset: rank threads in one address space, "
     "or forked processes over shared-memory rings"},
};

const Var* find(const char* name) {
  for (const Var& v : kVars) {
    if (std::string(v.name) == name) {
      return &v;
    }
  }
  return nullptr;
}

const Var& checked(const char* name) {
  const Var* v = find(name);
  if (v == nullptr) {
    throw std::logic_error(std::string("env: variable '") + name +
                           "' is not declared in the registry "
                           "(src/core/env.cpp)");
  }
  return *v;
}

}  // namespace

const std::vector<Var>& vars() {
  static const std::vector<Var> all(std::begin(kVars), std::end(kVars));
  return all;
}

std::string describe() {
  std::size_t name_w = 0;
  std::size_t type_w = 0;
  std::size_t def_w = 0;
  for (const Var& v : vars()) {
    name_w = std::max(name_w, std::string(v.name).size());
    type_w = std::max(type_w, std::string(v.type).size());
    def_w = std::max(def_w, std::string(v.def).size());
  }
  std::ostringstream os;
  for (const Var& v : vars()) {
    const char* live = std::getenv(v.name);
    os << v.name << std::string(name_w - std::string(v.name).size() + 2, ' ')
       << v.type << std::string(type_w - std::string(v.type).size() + 2, ' ')
       << "[" << v.def << "]"
       << std::string(def_w - std::string(v.def).size() + 2, ' ')
       << (live != nullptr ? ("= " + std::string(live) + "  ") : "")
       << v.help << '\n';
  }
  return os.str();
}

bool is_set(const char* name) {
  checked(name);
  return std::getenv(name) != nullptr;
}

std::optional<std::string> raw(const char* name) {
  checked(name);
  const char* v = std::getenv(name);
  return v != nullptr ? std::optional<std::string>(v) : std::nullopt;
}

bool get_bool(const char* name, bool def) {
  const auto v = raw(name);
  if (!v.has_value()) {
    return def;
  }
  return !(v->empty() || (*v)[0] == '0');
}

std::int64_t get_int(const char* name, std::int64_t def) {
  const auto v = raw(name);
  if (!v.has_value()) {
    return def;
  }
  try {
    std::size_t end = 0;
    const std::int64_t out = std::stoll(*v, &end);
    if (end != v->size()) {
      throw std::invalid_argument("");
    }
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(name) + "='" + *v +
                                "': expected an integer");
  }
}

double get_float(const char* name, double def) {
  const auto v = raw(name);
  if (!v.has_value()) {
    return def;
  }
  try {
    std::size_t end = 0;
    const double out = std::stod(*v, &end);
    if (end != v->size()) {
      throw std::invalid_argument("");
    }
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(name) + "='" + *v +
                                "': expected a floating-point number");
  }
}

std::string get_string(const char* name, const std::string& def) {
  const auto v = raw(name);
  return v.has_value() ? *v : def;
}

std::string get_enum(const char* name, const std::string& def,
                     const std::vector<std::string>& allowed) {
  const auto v = raw(name);
  if (!v.has_value()) {
    return def;
  }
  if (std::find(allowed.begin(), allowed.end(), *v) != allowed.end()) {
    return *v;
  }
  std::string valid;
  for (const std::string& a : allowed) {
    valid += (valid.empty() ? "" : "|") + (a.empty() ? "\"\"" : a);
  }
  throw std::invalid_argument(std::string(name) + "='" + *v +
                              "': valid values are " + valid);
}

std::vector<std::int64_t> parse_int_list(const std::string& what,
                                         const std::string& text) {
  std::vector<std::int64_t> out;
  if (text.empty()) {
    return out;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string tok = comma == std::string::npos
                                ? text.substr(pos)
                                : text.substr(pos, comma - pos);
    if (tok.empty()) {
      out.push_back(0);  // "8,,2": an elided entry stays untiled.
    } else {
      try {
        std::size_t end = 0;
        out.push_back(std::stoll(tok, &end));
        if (end != tok.size()) {
          throw std::invalid_argument("");
        }
      } catch (const std::exception&) {
        throw std::invalid_argument(
            what + "='" + text + "': entry '" + tok +
            "' is not an integer (expected a comma-separated list like "
            "\"16,8,0\")");
      }
    }
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

std::vector<std::int64_t> get_int_list(const char* name) {
  const auto v = raw(name);
  if (!v.has_value()) {
    return {};
  }
  return parse_int_list(name, *v);
}

}  // namespace jitfd::env
