// Automatic communication-pattern selection.
//
// The paper lists "an automated tuning system for selecting the
// best-performing MPI pattern without exploring all three options
// manually" as future work (Section IV-F). This implements it: trial
// time steps are executed with each candidate pattern on scratch copies
// of the field data, wall time is reduced across ranks (max — the
// slowest rank gates a synchronous step), and the fastest pattern wins.
// Field data is restored after every trial, so tuning is side-effect
// free and the user applies the returned operator as usual.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/operator.h"

namespace jitfd::core {

struct AutotuneReport {
  ir::MpiMode best = ir::MpiMode::Basic;
  /// Winning exchange depth (1 unless a communication-avoiding trial won).
  int best_depth = 1;
  /// Winning effective tile shape (empty = untiled won).
  std::vector<std::int64_t> best_tile;
  /// Measured seconds per pattern (slowest rank, best over trialled
  /// exchange depths and tile shapes).
  std::map<ir::MpiMode, double> seconds;
  /// One trial per (pattern, exchange depth, effective tile shape).
  using TrialKey = std::tuple<ir::MpiMode, int, std::vector<std::int64_t>>;
  /// Full trial grid -> seconds. Trials whose request was clamped by the
  /// compiler (insufficient halo capacity, sparse ops, tile not smaller
  /// than the local extent, ...) duplicate an already-measured point and
  /// are recorded in `skipped` instead.
  std::map<TrialKey, double> seconds_by_depth;
  /// Requested-but-not-run trials -> the compiler's clamp reason.
  std::map<TrialKey, std::string> skipped;
  int trial_steps = 0;
};

/// Build an Operator for `eqs` with the fastest communication pattern,
/// exchange depth and cache-tile shape.
///
/// `opts.mode`, `opts.exchange_depth` and `opts.tile` are ignored; every
/// pattern in {Basic, Diagonal, Full} is trialled jointly with exchange
/// depths {1, 2, 4} and a small set of tile-shape candidates (untiled
/// plus outer-dimension blocks sized from the fields' per-row cache
/// footprint) for `trial_steps` steps each (using `scalars` for the
/// symbol bindings, starting at time step `time_m`). On serial grids no
/// trials run and the mode stays None. The chosen operator is returned
/// fresh (trial side effects on field data are rolled back).
std::unique_ptr<Operator> autotune_operator(
    const std::vector<ir::Eq>& eqs, ir::CompileOptions opts,
    const std::map<std::string, double>& scalars, std::int64_t time_m = 0,
    int trial_steps = 3, AutotuneReport* report = nullptr,
    std::vector<runtime::SparseOp*> sparse_ops = {});

}  // namespace jitfd::core
