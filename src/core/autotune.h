// Automatic communication-pattern selection.
//
// The paper lists "an automated tuning system for selecting the
// best-performing MPI pattern without exploring all three options
// manually" as future work (Section IV-F). This implements it: trial
// time steps are executed with each candidate pattern on scratch copies
// of the field data, wall time is reduced across ranks (max — the
// slowest rank gates a synchronous step), and the fastest pattern wins.
// Field data is restored after every trial, so tuning is side-effect
// free and the user applies the returned operator as usual.
//
// Two scoring objectives exist (JITFD_AUTOTUNE_OBJECTIVE, or the
// explicit `objective` argument):
//  * wall — raw slowest-rank seconds, the historical behavior;
//  * attributed — each trial runs under tracing and is charged its
//    *attributed* cost: mean per-rank wait + redundant deep-halo
//    compute + the load-imbalance penalty (max - mean compute). The
//    winner is the trial whose time is spent computing, not waiting —
//    a config that merely hides a skewed load behind overlap still
//    pays its imbalance. Falls back to wall-clock (recorded in `why`)
//    when the tracing subsystem is compiled out (-DJITFD_OBS=OFF).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/operator.h"

namespace jitfd::core {

/// Autotune scoring objective. FromEnv resolves through the
/// JITFD_AUTOTUNE_OBJECTIVE registry entry (default wall).
enum class Objective { FromEnv, Wall, Attributed };

/// Cross-rank analysis digest of one attributed trial: the same
/// quantities obs::analyze reports, allreduced so every rank holds the
/// identical score and the winner needs no extra agreement step.
struct AnalysisScore {
  double wait_s = 0.0;             ///< Total halo.wait seconds, all ranks.
  double overlap_efficiency = 0.0; ///< Hidden / window over async exchanges.
  double imbalance_ratio = 0.0;    ///< Max / mean compute seconds.
  int critical_rank = -1;          ///< Slowest rank of this trial.
  double redundant_s = 0.0;        ///< Deep-halo ghost-extension excess.
  double imbalance_penalty_s = 0.0;  ///< max - mean compute seconds.
  /// (wait_s + redundant_s) / nranks + imbalance_penalty_s — the number
  /// attributed trials are ranked by.
  double attributed_cost_s = 0.0;
};

struct AutotuneReport {
  ir::MpiMode best = ir::MpiMode::Basic;
  /// Winning exchange depth (1 unless a communication-avoiding trial won).
  int best_depth = 1;
  /// Winning effective tile shape (empty = untiled won).
  std::vector<std::int64_t> best_tile;
  /// Measured seconds per pattern (slowest rank, best over trialled
  /// exchange depths and tile shapes).
  std::map<ir::MpiMode, double> seconds;
  /// One trial per (pattern, exchange depth, effective tile shape).
  using TrialKey = std::tuple<ir::MpiMode, int, std::vector<std::int64_t>>;
  /// Full trial grid -> seconds. Trials whose request was clamped by the
  /// compiler (insufficient halo capacity, sparse ops, tile not smaller
  /// than the local extent, ...) duplicate an already-measured point and
  /// are recorded in `skipped` instead.
  std::map<TrialKey, double> seconds_by_depth;
  /// Requested-but-not-run trials -> the compiler's clamp reason.
  std::map<TrialKey, std::string> skipped;
  int trial_steps = 0;

  /// Resolved scoring objective (never FromEnv; Attributed only when
  /// scores were actually collected).
  Objective objective = Objective::Wall;
  /// Per-trial analysis scores (attributed objective only; keyed like
  /// seconds_by_depth).
  std::map<TrialKey, AnalysisScore> scores;
  /// Decision trail: which candidate won and the decisive cost term.
  /// Non-empty after every tuning run (including serial no-op runs).
  std::string why;
  /// Attributed runs flag a persistent imbalance: every scored trial
  /// saw imbalance_ratio >= rebalance_threshold with one stable
  /// critical rank. Feed Grid::plan_rebalance next.
  bool rebalance_recommended = false;
  int rebalance_rank = -1;           ///< The stable critical rank.
  double rebalance_threshold = 0.0;  ///< JITFD_REBALANCE_THRESHOLD used.
};

/// Decision kernel for the attributed objective, pure so tests can feed
/// synthetic scores: picks the minimum attributed_cost_s (ties resolve
/// to the first key in map order) and names the decisive term — the
/// cost component with the largest gap to the runner-up.
struct AttributedChoice {
  AutotuneReport::TrialKey best;
  std::string why;
};
AttributedChoice choose_attributed(
    const std::map<AutotuneReport::TrialKey, AnalysisScore>& scores,
    int nranks);

/// Stable machine-readable export of a report: one top-level "autotune"
/// object with objective / why / best / rebalance / trials / skipped
/// (validated by obs::validate_autotune_json / tools/trace_check).
std::string autotune_report_json(const AutotuneReport& report);
bool write_autotune_file(const std::string& path,
                         const AutotuneReport& report);

/// Build an Operator for `eqs` with the fastest communication pattern,
/// exchange depth and cache-tile shape.
///
/// `opts.mode`, `opts.exchange_depth` and `opts.tile` are ignored; every
/// pattern in {Basic, Diagonal, Full} is trialled jointly with exchange
/// depths {1, 2, 4} and a small set of tile-shape candidates (untiled
/// plus outer-dimension blocks sized from the fields' per-row cache
/// footprint) for `trial_steps` steps each (using `scalars` for the
/// symbol bindings, starting at time step `time_m`). On serial grids no
/// trials run and the mode stays None. The chosen operator is returned
/// fresh (trial side effects on field data are rolled back).
///
/// Attributed runs reset the trace registry around every trial, so any
/// events recorded before tuning are gone afterwards — tune first,
/// trace later.
std::unique_ptr<Operator> autotune_operator(
    const std::vector<ir::Eq>& eqs, ir::CompileOptions opts,
    const std::map<std::string, double>& scalars, std::int64_t time_m = 0,
    int trial_steps = 3, AutotuneReport* report = nullptr,
    std::vector<runtime::SparseOp*> sparse_ops = {},
    Objective objective = Objective::FromEnv);

}  // namespace jitfd::core
