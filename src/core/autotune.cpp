#include "core/autotune.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "core/env.h"
#include "obs/analysis.h"
#include "symbolic/manip.h"

namespace jitfd::core {

namespace {

std::vector<grid::Function*> fields_of(const std::vector<ir::Eq>& eqs) {
  std::set<int> ids;
  for (const ir::Eq& eq : eqs) {
    for (const sym::Ex& e : {eq.lhs, eq.rhs}) {
      sym::walk(e, [&](const sym::Ex& sub) {
        if (sub.kind() == sym::Kind::FieldAccess) {
          ids.insert(sub.node().field.id);
        }
      });
    }
  }
  std::vector<grid::Function*> out;
  for (const int id : ids) {
    grid::Function* f = grid::lookup_field(id);
    if (f != nullptr) {
      out.push_back(f);
    }
  }
  return out;
}

/// Tile-shape candidates: untiled, plus outer-dimension blocks sized so
/// one block's working set (block rows x the per-row footprint of every
/// live buffer) fits a nominal last-level-cache share, plus a halved
/// variant. Candidates not strictly smaller than the minimum rank-local
/// extent are dropped here — the lowering pass would clamp them to
/// untiled anyway, duplicating the untiled trial.
std::vector<std::vector<std::int64_t>> tile_candidates(
    const std::vector<grid::Function*>& fields, const grid::Grid& grid) {
  std::vector<std::vector<std::int64_t>> cands;
  cands.push_back({});  // untiled
  const int nd = grid.ndims();
  if (nd < 2) {
    return cands;  // 1-D: the only dimension stays contiguous for SIMD
  }
  // Bytes one grid row (innermost extent) of every live buffer touches.
  std::int64_t row_bytes = 0;
  for (const grid::Function* f : fields) {
    row_bytes += static_cast<std::int64_t>(sizeof(float)) *
                 f->padded_shape().back() * f->time_buffers();
  }
  // Rows per tile along every non-innermost dim combined; for nd > 2 a
  // dim-0 block of T spans T * mid-extents rows, so divide out.
  std::int64_t rows = 1;
  for (int d = 1; d < nd - 1; ++d) {
    rows *= grid.min_local_size(d);
  }
  constexpr std::int64_t kCacheBytes = 1 << 25;  // nominal 32 MiB LLC share
  const std::int64_t fit =
      row_bytes > 0 && rows > 0 ? kCacheBytes / (row_bytes * rows) : 0;
  const std::int64_t min_ext = grid.min_local_size(0);
  for (std::int64_t t : {fit, fit / 2}) {
    t = std::min(t, min_ext / 2);  // at least two blocks, else untiled wins
    if (t < 2) {
      continue;
    }
    std::vector<std::int64_t> cand(static_cast<std::size_t>(nd), 0);
    cand[0] = t;
    if (std::find(cands.begin(), cands.end(), cand) == cands.end()) {
      cands.push_back(cand);
    }
  }
  return cands;
}

std::string tile_text(const std::vector<std::int64_t>& tile) {
  if (tile.empty() ||
      std::all_of(tile.begin(), tile.end(),
                  [](std::int64_t t) { return t == 0; })) {
    return "untiled";
  }
  std::string out = "tile ";
  for (std::size_t i = 0; i < tile.size(); ++i) {
    out += (i > 0 ? "," : "") + std::to_string(tile[i]);
  }
  return out;
}

std::string trial_text(const AutotuneReport::TrialKey& key) {
  std::ostringstream os;
  os << ir::to_string(std::get<0>(key)) << " depth " << std::get<1>(key)
     << " " << tile_text(std::get<2>(key));
  return os.str();
}

/// Build the rank-uniform AnalysisScore of one traced trial. Each rank
/// analyzes only its OWN events (under process_shm a live run never
/// sees peer traces — those merge after launch returns — so restricting
/// to the local rank makes both transports behave identically), then
/// the scalar totals are allreduced.
AnalysisScore score_trial(const obs::TraceHandle& handle,
                          const smpi::Communicator& comm) {
  obs::TraceData own;
  if (handle.active()) {
    for (const obs::TraceData::Rec& e : handle.data().events) {
      if (e.rank == comm.rank()) {
        own.events.push_back(e);
      }
    }
  }
  const obs::AnalysisReport local = obs::analyze(own);
  double own_wait = 0.0;
  for (const obs::RankWaitStats& w : local.rank_waits) {
    own_wait += w.wait_s;
  }
  const double own_compute = local.max_compute_s;  // single-rank report
  std::vector<double> sums{own_wait, local.redundant_compute_s,
                           local.overlap_window_s, local.overlap_hidden_s,
                           own_compute};
  comm.allreduce(std::span<double>(sums), smpi::ReduceOp::Sum);
  std::vector<double> max_compute{own_compute};
  comm.allreduce(std::span<double>(max_compute), smpi::ReduceOp::Max);
  // Critical rank: every rank proposes itself iff it holds the max
  // (bitwise — max_compute is a copy of one rank's value), then the
  // proposals max-reduce to the highest agreeing rank id.
  std::vector<std::int64_t> crit{
      own_compute >= max_compute[0] ? comm.rank() : -1};
  comm.allreduce(std::span<std::int64_t>(crit), smpi::ReduceOp::Max);

  const int n = comm.size();
  AnalysisScore sc;
  sc.wait_s = sums[0];
  sc.redundant_s = sums[1];
  if (sums[2] > 0.0) {
    sc.overlap_efficiency = std::clamp(sums[3] / sums[2], 0.0, 1.0);
  }
  const double mean_compute = n > 0 ? sums[4] / n : 0.0;
  if (mean_compute > 0.0) {
    sc.imbalance_ratio = max_compute[0] / mean_compute;
  }
  sc.critical_rank = static_cast<int>(crit[0]);
  sc.imbalance_penalty_s = std::max(max_compute[0] - mean_compute, 0.0);
  sc.attributed_cost_s =
      (n > 0 ? (sc.wait_s + sc.redundant_s) / n : 0.0) +
      sc.imbalance_penalty_s;
  return sc;
}

Objective resolve_objective(Objective requested) {
  if (requested != Objective::FromEnv) {
    return requested;
  }
  return env::get_enum("JITFD_AUTOTUNE_OBJECTIVE", "wall",
                       {"wall", "attributed"}) == "attributed"
             ? Objective::Attributed
             : Objective::Wall;
}

void put(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    v = 0.0;
  }
  std::ostringstream tmp;
  tmp.precision(9);
  tmp << v;
  os << tmp.str();
}

void put_key(std::ostringstream& os, const AutotuneReport::TrialKey& key) {
  os << "\"mode\": \"" << ir::to_string(std::get<0>(key)) << "\", \"depth\": "
     << std::get<1>(key) << ", \"tile\": [";
  const std::vector<std::int64_t>& tile = std::get<2>(key);
  for (std::size_t i = 0; i < tile.size(); ++i) {
    os << (i > 0 ? ", " : "") << tile[i];
  }
  os << "]";
}

}  // namespace

AttributedChoice choose_attributed(
    const std::map<AutotuneReport::TrialKey, AnalysisScore>& scores,
    int nranks) {
  AttributedChoice choice;
  if (scores.empty()) {
    choice.why = "attributed objective: no scored trials";
    return choice;
  }
  const auto* best = &*scores.begin();
  for (const auto& entry : scores) {
    if (entry.second.attributed_cost_s < best->second.attributed_cost_s) {
      best = &entry;
    }
  }
  choice.best = best->first;
  // Runner-up: the cheapest of the others, for the decisive-term diff.
  const std::pair<const AutotuneReport::TrialKey, AnalysisScore>* runner =
      nullptr;
  for (const auto& entry : scores) {
    if (&entry == best) {
      continue;
    }
    if (runner == nullptr ||
        entry.second.attributed_cost_s < runner->second.attributed_cost_s) {
      runner = &entry;
    }
  }
  std::ostringstream os;
  os << "attributed objective: " << trial_text(best->first) << " wins";
  if (runner == nullptr) {
    os << " as the only scored candidate (cost ";
    put(os, best->second.attributed_cost_s);
    os << " s)";
    choice.why = os.str();
    return choice;
  }
  // Which cost term gave the winner its edge over the runner-up?
  const double per_rank = nranks > 0 ? 1.0 / nranks : 1.0;
  const double d_wait =
      (runner->second.wait_s - best->second.wait_s) * per_rank;
  const double d_redundant =
      (runner->second.redundant_s - best->second.redundant_s) * per_rank;
  const double d_imbalance =
      runner->second.imbalance_penalty_s - best->second.imbalance_penalty_s;
  const char* term = "attributed cost";
  double delta = 0.0;
  if (d_wait > delta) {
    term = "wait";
    delta = d_wait;
  }
  if (d_redundant > delta) {
    term = "redundant compute";
    delta = d_redundant;
  }
  if (d_imbalance > delta) {
    term = "imbalance penalty";
    delta = d_imbalance;
  }
  os << " on " << term << " (cost ";
  put(os, best->second.attributed_cost_s);
  os << " s vs ";
  put(os, runner->second.attributed_cost_s);
  os << " s for " << trial_text(runner->first) << ")";
  choice.why = os.str();
  return choice;
}

std::string autotune_report_json(const AutotuneReport& r) {
  std::ostringstream os;
  const bool attributed = r.objective == Objective::Attributed;
  os << "{\n\"autotune\": {\n";
  os << "  \"objective\": \"" << (attributed ? "attributed" : "wall")
     << "\",\n";
  std::string why = r.why;
  std::string escaped;
  for (const char c : why) {
    if (c == '"' || c == '\\') {
      escaped += '\\';
    }
    escaped += c;
  }
  os << "  \"why\": \"" << escaped << "\",\n";
  os << "  \"trial_steps\": " << r.trial_steps << ",\n";
  os << "  \"best\": {";
  put_key(os, {r.best, r.best_depth, r.best_tile});
  os << "},\n";
  os << "  \"rebalance\": {\"recommended\": "
     << (r.rebalance_recommended ? "true" : "false")
     << ", \"rank\": " << r.rebalance_rank << ", \"threshold\": ";
  put(os, r.rebalance_threshold);
  os << "},\n";
  os << "  \"trials\": [";
  bool first = true;
  for (const auto& [key, secs] : r.seconds_by_depth) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {";
    put_key(os, key);
    os << ", \"seconds\": ";
    put(os, secs);
    const auto sit = r.scores.find(key);
    if (attributed && sit != r.scores.end()) {
      const AnalysisScore& sc = sit->second;
      os << ", \"score\": {\"wait_seconds\": ";
      put(os, sc.wait_s);
      os << ", \"overlap_efficiency\": ";
      put(os, sc.overlap_efficiency);
      os << ", \"imbalance_ratio\": ";
      put(os, sc.imbalance_ratio);
      os << ", \"critical_rank\": " << sc.critical_rank;
      os << ", \"redundant_seconds\": ";
      put(os, sc.redundant_s);
      os << ", \"imbalance_penalty_seconds\": ";
      put(os, sc.imbalance_penalty_s);
      os << ", \"attributed_cost_seconds\": ";
      put(os, sc.attributed_cost_s);
      os << "}";
    }
    os << "}";
  }
  os << "\n  ],\n";
  os << "  \"skipped\": [";
  first = true;
  for (const auto& [key, reason] : r.skipped) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {";
    put_key(os, key);
    std::string esc;
    for (const char c : reason) {
      if (c == '"' || c == '\\') {
        esc += '\\';
      }
      esc += c;
    }
    os << ", \"reason\": \"" << esc << "\"}";
  }
  os << "\n  ]\n}\n}\n";
  return os.str();
}

bool write_autotune_file(const std::string& path,
                         const AutotuneReport& report) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << autotune_report_json(report);
  return static_cast<bool>(out);
}

std::unique_ptr<Operator> autotune_operator(
    const std::vector<ir::Eq>& eqs, ir::CompileOptions opts,
    const std::map<std::string, double>& scalars, std::int64_t time_m,
    int trial_steps, AutotuneReport* report,
    std::vector<runtime::SparseOp*> sparse_ops, Objective objective) {
  const std::vector<grid::Function*> fields = fields_of(eqs);
  const grid::Grid& grid = fields.front()->grid();

  AutotuneReport local_report;
  local_report.trial_steps = trial_steps;
  local_report.rebalance_threshold =
      env::get_float("JITFD_REBALANCE_THRESHOLD", 1.25);
  Objective resolved = resolve_objective(objective);
#ifdef JITFD_OBS_DISABLED
  const bool obs_available = false;
#else
  const bool obs_available = true;
#endif
  std::string fallback_note;
  if (resolved == Objective::Attributed && !obs_available) {
    resolved = Objective::Wall;
    fallback_note =
        " (attributed objective requested, but tracing is compiled out: "
        "fell back to wall-clock)";
  }
  local_report.objective = resolved;
  const bool attributed = resolved == Objective::Attributed;

  if (!grid.distributed()) {
    opts.mode = ir::MpiMode::None;
    local_report.why = "serial grid: no distributed trials, mode none";
    if (report != nullptr) {
      *report = local_report;
    }
    return std::make_unique<Operator>(eqs, opts, std::move(sparse_ops));
  }

  // Snapshot all field data (trial steps mutate the wavefields).
  std::vector<std::vector<float>> snapshots;
  snapshots.reserve(fields.size());
  for (const grid::Function* f : fields) {
    const auto s = f->raw_storage();
    snapshots.emplace_back(s.begin(), s.end());
  }
  const auto restore = [&] {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      auto dst = fields[i]->raw_storage();
      std::copy(snapshots[i].begin(), snapshots[i].end(), dst.begin());
    }
  };

  const std::vector<std::vector<std::int64_t>> tiles =
      tile_candidates(fields, grid);

  const smpi::Communicator& comm = grid.cart()->comm();
  double best_seconds = 0.0;
  bool first = true;
  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    for (const int depth : {1, 2, 4}) {
      for (const std::vector<std::int64_t>& tile : tiles) {
        ir::CompileOptions trial_opts = opts;
        trial_opts.mode = mode;
        trial_opts.exchange_depth = depth;
        trial_opts.tile = tile;
        // Trials run without the sparse operations: their cost is
        // pattern-independent and some (receiver interpolation) accumulate
        // externally visible records that must not be polluted.
        Operator trial(eqs, trial_opts);
        const AutotuneReport::TrialKey key{mode, depth, tile};
        if (trial.info().exchange_depth != depth) {
          // The compiler clamped this request (identically on every rank:
          // clamping depends only on equations, topology and halo
          // capacity), so the trial would duplicate a shallower one.
          local_report.skipped[key] =
              trial.info().exchange_depth_clamp_reason.empty()
                  ? "exchange depth clamped to " +
                        std::to_string(trial.info().exchange_depth)
                  : trial.info().exchange_depth_clamp_reason;
          continue;
        }
        const std::vector<std::int64_t>& eff_tile = trial.info().tile;
        const bool eff_tiled =
            std::any_of(eff_tile.begin(), eff_tile.end(),
                        [](std::int64_t t) { return t > 0; });
        if (!tile.empty() && !eff_tiled) {
          // The whole tile request was clamped away: this trial would
          // duplicate the untiled one (same reasoning — the clamp is
          // rank-uniform by construction).
          local_report.skipped[key] = trial.info().tile_clamp_reason.empty()
                                          ? "tile clamped to untiled"
                                          : trial.info().tile_clamp_reason;
          continue;
        }
        // Key measured trials by the *effective* tile so partially
        // clamped requests that land on the same schedule dedupe.
        const AutotuneReport::TrialKey eff_key{
            mode, depth, eff_tiled ? eff_tile : std::vector<std::int64_t>{}};
        if (local_report.seconds_by_depth.count(eff_key) != 0) {
          local_report.skipped[key] = trial.info().tile_clamp_reason.empty()
                                          ? "duplicate of an earlier trial"
                                          : trial.info().tile_clamp_reason;
          continue;
        }
        comm.barrier();
        if (attributed) {
          // Quiescent point (behind the barrier): drop earlier events so
          // this trial's analysis sees only its own spans. Under
          // process_shm every process resets its own registry; under
          // threads the concurrent resets hit one mutex-guarded registry.
          obs::reset();
          comm.barrier();
        }
        const auto start = std::chrono::steady_clock::now();
        const RunSummary run = trial.apply({.time_m = time_m,
                                            .time_M = time_m + trial_steps - 1,
                                            .scalars = scalars,
                                            .trace = attributed});
        std::vector<double> elapsed{
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count()};
        // The slowest rank gates a synchronous time step.
        comm.allreduce(std::span<double>(elapsed), smpi::ReduceOp::Max);
        local_report.seconds_by_depth[eff_key] = elapsed[0];
        if (attributed) {
          local_report.scores[eff_key] = score_trial(run.trace, comm);
        }
        const auto mode_it = local_report.seconds.find(mode);
        if (mode_it == local_report.seconds.end() ||
            elapsed[0] < mode_it->second) {
          local_report.seconds[mode] = elapsed[0];
        }
        if (first || elapsed[0] < best_seconds) {
          first = false;
          best_seconds = elapsed[0];
          local_report.best = mode;
          local_report.best_depth = depth;
          local_report.best_tile = std::get<2>(eff_key);
        }
        restore();
      }
    }
  }
  if (attributed) {
    // Leave no trial events behind: the caller's next traced run starts
    // from a clean registry.
    comm.barrier();
    obs::reset();
    comm.barrier();
  }

  if (attributed && !local_report.scores.empty()) {
    const AttributedChoice choice =
        choose_attributed(local_report.scores, comm.size());
    local_report.best = std::get<0>(choice.best);
    local_report.best_depth = std::get<1>(choice.best);
    local_report.best_tile = std::get<2>(choice.best);
    local_report.why = choice.why;
    // Persistent imbalance: every scored trial crossed the threshold
    // and blamed the same rank — the skew is the domain's, not one
    // pattern's, so recommend a biased split.
    bool persistent = true;
    int stable_rank = local_report.scores.begin()->second.critical_rank;
    for (const auto& [key, sc] : local_report.scores) {
      if (sc.imbalance_ratio < local_report.rebalance_threshold ||
          sc.critical_rank != stable_rank || sc.critical_rank < 0) {
        persistent = false;
        break;
      }
    }
    if (persistent) {
      local_report.rebalance_recommended = true;
      local_report.rebalance_rank = stable_rank;
      local_report.why +=
          "; persistent imbalance on rank " + std::to_string(stable_rank) +
          " (rebalance recommended)";
    }
  } else {
    std::ostringstream os;
    os << "wall objective: "
       << trial_text(
              {local_report.best, local_report.best_depth,
               local_report.best_tile})
       << " fastest at ";
    put(os, best_seconds);
    os << " s" << fallback_note;
    local_report.why = os.str();
  }

  opts.mode = local_report.best;
  opts.exchange_depth = local_report.best_depth;
  opts.tile = local_report.best_tile;
  if (report != nullptr) {
    *report = local_report;
  }
  return std::make_unique<Operator>(eqs, opts, std::move(sparse_ops));
}

}  // namespace jitfd::core
