#include "core/autotune.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "symbolic/manip.h"

namespace jitfd::core {

namespace {

std::vector<grid::Function*> fields_of(const std::vector<ir::Eq>& eqs) {
  std::set<int> ids;
  for (const ir::Eq& eq : eqs) {
    for (const sym::Ex& e : {eq.lhs, eq.rhs}) {
      sym::walk(e, [&](const sym::Ex& sub) {
        if (sub.kind() == sym::Kind::FieldAccess) {
          ids.insert(sub.node().field.id);
        }
      });
    }
  }
  std::vector<grid::Function*> out;
  for (const int id : ids) {
    grid::Function* f = grid::lookup_field(id);
    if (f != nullptr) {
      out.push_back(f);
    }
  }
  return out;
}

/// Tile-shape candidates: untiled, plus outer-dimension blocks sized so
/// one block's working set (block rows x the per-row footprint of every
/// live buffer) fits a nominal last-level-cache share, plus a halved
/// variant. Candidates not strictly smaller than the minimum rank-local
/// extent are dropped here — the lowering pass would clamp them to
/// untiled anyway, duplicating the untiled trial.
std::vector<std::vector<std::int64_t>> tile_candidates(
    const std::vector<grid::Function*>& fields, const grid::Grid& grid) {
  std::vector<std::vector<std::int64_t>> cands;
  cands.push_back({});  // untiled
  const int nd = grid.ndims();
  if (nd < 2) {
    return cands;  // 1-D: the only dimension stays contiguous for SIMD
  }
  // Bytes one grid row (innermost extent) of every live buffer touches.
  std::int64_t row_bytes = 0;
  for (const grid::Function* f : fields) {
    row_bytes += static_cast<std::int64_t>(sizeof(float)) *
                 f->padded_shape().back() * f->time_buffers();
  }
  // Rows per tile along every non-innermost dim combined; for nd > 2 a
  // dim-0 block of T spans T * mid-extents rows, so divide out.
  std::int64_t rows = 1;
  for (int d = 1; d < nd - 1; ++d) {
    rows *= grid.shape()[static_cast<std::size_t>(d)] /
            std::max<std::int64_t>(1, grid.topology()[static_cast<std::size_t>(d)]);
  }
  constexpr std::int64_t kCacheBytes = 1 << 25;  // nominal 32 MiB LLC share
  const std::int64_t fit =
      row_bytes > 0 && rows > 0 ? kCacheBytes / (row_bytes * rows) : 0;
  const std::int64_t min_ext =
      grid.shape()[0] / std::max<std::int64_t>(1, grid.topology()[0]);
  for (std::int64_t t : {fit, fit / 2}) {
    t = std::min(t, min_ext / 2);  // at least two blocks, else untiled wins
    if (t < 2) {
      continue;
    }
    std::vector<std::int64_t> cand(static_cast<std::size_t>(nd), 0);
    cand[0] = t;
    if (std::find(cands.begin(), cands.end(), cand) == cands.end()) {
      cands.push_back(cand);
    }
  }
  return cands;
}

}  // namespace

std::unique_ptr<Operator> autotune_operator(
    const std::vector<ir::Eq>& eqs, ir::CompileOptions opts,
    const std::map<std::string, double>& scalars, std::int64_t time_m,
    int trial_steps, AutotuneReport* report,
    std::vector<runtime::SparseOp*> sparse_ops) {
  const std::vector<grid::Function*> fields = fields_of(eqs);
  const grid::Grid& grid = fields.front()->grid();

  AutotuneReport local_report;
  local_report.trial_steps = trial_steps;

  if (!grid.distributed()) {
    opts.mode = ir::MpiMode::None;
    if (report != nullptr) {
      *report = local_report;
    }
    return std::make_unique<Operator>(eqs, opts, std::move(sparse_ops));
  }

  // Snapshot all field data (trial steps mutate the wavefields).
  std::vector<std::vector<float>> snapshots;
  snapshots.reserve(fields.size());
  for (const grid::Function* f : fields) {
    const auto s = f->raw_storage();
    snapshots.emplace_back(s.begin(), s.end());
  }
  const auto restore = [&] {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      auto dst = fields[i]->raw_storage();
      std::copy(snapshots[i].begin(), snapshots[i].end(), dst.begin());
    }
  };

  const std::vector<std::vector<std::int64_t>> tiles =
      tile_candidates(fields, grid);

  const smpi::Communicator& comm = grid.cart()->comm();
  double best_seconds = 0.0;
  bool first = true;
  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    for (const int depth : {1, 2, 4}) {
      for (const std::vector<std::int64_t>& tile : tiles) {
        ir::CompileOptions trial_opts = opts;
        trial_opts.mode = mode;
        trial_opts.exchange_depth = depth;
        trial_opts.tile = tile;
        // Trials run without the sparse operations: their cost is
        // pattern-independent and some (receiver interpolation) accumulate
        // externally visible records that must not be polluted.
        Operator trial(eqs, trial_opts);
        const AutotuneReport::TrialKey key{mode, depth, tile};
        if (trial.info().exchange_depth != depth) {
          // The compiler clamped this request (identically on every rank:
          // clamping depends only on equations, topology and halo
          // capacity), so the trial would duplicate a shallower one.
          local_report.skipped[key] =
              trial.info().exchange_depth_clamp_reason.empty()
                  ? "exchange depth clamped to " +
                        std::to_string(trial.info().exchange_depth)
                  : trial.info().exchange_depth_clamp_reason;
          continue;
        }
        const std::vector<std::int64_t>& eff_tile = trial.info().tile;
        const bool eff_tiled =
            std::any_of(eff_tile.begin(), eff_tile.end(),
                        [](std::int64_t t) { return t > 0; });
        if (!tile.empty() && !eff_tiled) {
          // The whole tile request was clamped away: this trial would
          // duplicate the untiled one (same reasoning — the clamp is
          // rank-uniform by construction).
          local_report.skipped[key] = trial.info().tile_clamp_reason.empty()
                                          ? "tile clamped to untiled"
                                          : trial.info().tile_clamp_reason;
          continue;
        }
        // Key measured trials by the *effective* tile so partially
        // clamped requests that land on the same schedule dedupe.
        const AutotuneReport::TrialKey eff_key{
            mode, depth, eff_tiled ? eff_tile : std::vector<std::int64_t>{}};
        if (local_report.seconds_by_depth.count(eff_key) != 0) {
          local_report.skipped[key] = trial.info().tile_clamp_reason.empty()
                                          ? "duplicate of an earlier trial"
                                          : trial.info().tile_clamp_reason;
          continue;
        }
        comm.barrier();
        const auto start = std::chrono::steady_clock::now();
        trial.apply({.time_m = time_m,
                     .time_M = time_m + trial_steps - 1,
                     .scalars = scalars});
        std::vector<double> elapsed{
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count()};
        // The slowest rank gates a synchronous time step.
        comm.allreduce(std::span<double>(elapsed), smpi::ReduceOp::Max);
        local_report.seconds_by_depth[eff_key] = elapsed[0];
        const auto mode_it = local_report.seconds.find(mode);
        if (mode_it == local_report.seconds.end() ||
            elapsed[0] < mode_it->second) {
          local_report.seconds[mode] = elapsed[0];
        }
        if (first || elapsed[0] < best_seconds) {
          first = false;
          best_seconds = elapsed[0];
          local_report.best = mode;
          local_report.best_depth = depth;
          local_report.best_tile = std::get<2>(eff_key);
        }
        restore();
      }
    }
  }

  opts.mode = local_report.best;
  opts.exchange_depth = local_report.best_depth;
  opts.tile = local_report.best_tile;
  if (report != nullptr) {
    *report = local_report;
  }
  return std::make_unique<Operator>(eqs, opts, std::move(sparse_ops));
}

}  // namespace jitfd::core
