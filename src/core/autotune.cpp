#include "core/autotune.h"

#include <chrono>
#include <set>

#include "symbolic/manip.h"

namespace jitfd::core {

namespace {

std::vector<grid::Function*> fields_of(const std::vector<ir::Eq>& eqs) {
  std::set<int> ids;
  for (const ir::Eq& eq : eqs) {
    for (const sym::Ex& e : {eq.lhs, eq.rhs}) {
      sym::walk(e, [&](const sym::Ex& sub) {
        if (sub.kind() == sym::Kind::FieldAccess) {
          ids.insert(sub.node().field.id);
        }
      });
    }
  }
  std::vector<grid::Function*> out;
  for (const int id : ids) {
    grid::Function* f = grid::lookup_field(id);
    if (f != nullptr) {
      out.push_back(f);
    }
  }
  return out;
}

}  // namespace

std::unique_ptr<Operator> autotune_operator(
    const std::vector<ir::Eq>& eqs, ir::CompileOptions opts,
    const std::map<std::string, double>& scalars, std::int64_t time_m,
    int trial_steps, AutotuneReport* report,
    std::vector<runtime::SparseOp*> sparse_ops) {
  const std::vector<grid::Function*> fields = fields_of(eqs);
  const grid::Grid& grid = fields.front()->grid();

  AutotuneReport local_report;
  local_report.trial_steps = trial_steps;

  if (!grid.distributed()) {
    opts.mode = ir::MpiMode::None;
    if (report != nullptr) {
      *report = local_report;
    }
    return std::make_unique<Operator>(eqs, opts, std::move(sparse_ops));
  }

  // Snapshot all field data (trial steps mutate the wavefields).
  std::vector<std::vector<float>> snapshots;
  snapshots.reserve(fields.size());
  for (const grid::Function* f : fields) {
    const auto s = f->raw_storage();
    snapshots.emplace_back(s.begin(), s.end());
  }
  const auto restore = [&] {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      auto dst = fields[i]->raw_storage();
      std::copy(snapshots[i].begin(), snapshots[i].end(), dst.begin());
    }
  };

  const smpi::Communicator& comm = grid.cart()->comm();
  double best_seconds = 0.0;
  bool first = true;
  for (const ir::MpiMode mode :
       {ir::MpiMode::Basic, ir::MpiMode::Diagonal, ir::MpiMode::Full}) {
    for (const int depth : {1, 2, 4}) {
      ir::CompileOptions trial_opts = opts;
      trial_opts.mode = mode;
      trial_opts.exchange_depth = depth;
      // Trials run without the sparse operations: their cost is
      // pattern-independent and some (receiver interpolation) accumulate
      // externally visible records that must not be polluted.
      Operator trial(eqs, trial_opts);
      if (trial.info().exchange_depth != depth) {
        // The compiler clamped this depth (identically on every rank:
        // clamping depends only on equations, topology and halo
        // capacity), so the trial would duplicate a shallower one.
        continue;
      }
      comm.barrier();
      const auto start = std::chrono::steady_clock::now();
      trial.apply({.time_m = time_m,
                   .time_M = time_m + trial_steps - 1,
                   .scalars = scalars});
      std::vector<double> elapsed{std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - start)
                                      .count()};
      // The slowest rank gates a synchronous time step.
      comm.allreduce(std::span<double>(elapsed), smpi::ReduceOp::Max);
      local_report.seconds_by_depth[{mode, depth}] = elapsed[0];
      const auto mode_it = local_report.seconds.find(mode);
      if (mode_it == local_report.seconds.end() ||
          elapsed[0] < mode_it->second) {
        local_report.seconds[mode] = elapsed[0];
      }
      if (first || elapsed[0] < best_seconds) {
        first = false;
        best_seconds = elapsed[0];
        local_report.best = mode;
        local_report.best_depth = depth;
      }
      restore();
    }
  }

  opts.mode = local_report.best;
  opts.exchange_depth = local_report.best_depth;
  if (report != nullptr) {
    *report = local_report;
  }
  return std::make_unique<Operator>(eqs, opts, std::move(sparse_ops));
}

}  // namespace jitfd::core
